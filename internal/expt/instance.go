// Package expt is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section VI) against the
// synthetic dataset analogs. Each experiment returns structured rows
// and can render itself as an aligned text table; cmd/imcbench and the
// repository benchmarks are thin wrappers around this package.
package expt

import (
	"fmt"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
)

// Formation selects how communities are formed, matching the paper's
// two community-formation regimes.
type Formation int

const (
	// Louvain uses modularity-based detection (the paper's default).
	Louvain Formation = iota + 1
	// RandomFormation assigns nodes to communities uniformly.
	RandomFormation
)

// String implements fmt.Stringer.
func (f Formation) String() string {
	switch f {
	case Louvain:
		return "louvain"
	case RandomFormation:
		return "random"
	default:
		return fmt.Sprintf("Formation(%d)", int(f))
	}
}

// InstanceConfig describes one experimental (graph, communities)
// configuration.
type InstanceConfig struct {
	// Dataset is a registry name from internal/gen ("facebook", ...).
	Dataset string
	// Scale shrinks the dataset analog; (0, 1].
	Scale float64
	// Formation picks Louvain (default) or random communities.
	Formation Formation
	// SizeCap is the paper's s (default 8): larger communities split.
	SizeCap int
	// Bounded selects h_i = 2 (bounded case) instead of h_i = ⌈|C_i|/2⌉.
	Bounded bool
	// Seed drives generation, community formation, and splitting.
	Seed uint64
}

func (c InstanceConfig) normalized() InstanceConfig {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Formation == 0 {
		c.Formation = Louvain
	}
	if c.SizeCap <= 0 {
		c.SizeCap = 8
	}
	return c
}

// Instance is a ready-to-solve experimental configuration: the weighted
// graph plus the thresholded, benefit-assigned partition.
type Instance struct {
	// Name identifies the configuration in reports.
	Name string
	// G carries weighted-cascade edge weights.
	G *graph.Graph
	// Part is size-capped with thresholds and benefits assigned.
	Part *community.Partition
	// Config echoes the configuration that produced the instance.
	Config InstanceConfig
}

// BuildInstance generates the dataset analog, applies weighted-cascade
// weights, forms communities, splits to the size cap, and assigns the
// paper's thresholds (h=2 bounded / 50% regular) and population
// benefits.
func BuildInstance(cfg InstanceConfig) (*Instance, error) {
	cfg = cfg.normalized()
	g, err := gen.BuildDataset(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("expt: build dataset: %w", err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, cfg.Seed)

	var part *community.Partition
	switch cfg.Formation {
	case RandomFormation:
		r := g.NumNodes() / cfg.SizeCap
		if r < 1 {
			r = 1
		}
		part, err = community.Random(g.NumNodes(), r, cfg.Seed+1)
	default:
		part, err = community.Louvain(g, cfg.Seed+1)
	}
	if err != nil {
		return nil, fmt.Errorf("expt: form communities: %w", err)
	}
	part, err = part.SplitBySize(cfg.SizeCap, cfg.Seed+2)
	if err != nil {
		return nil, fmt.Errorf("expt: split communities: %w", err)
	}
	if cfg.Bounded {
		part.SetBoundedThresholds(2)
	} else {
		part.SetFractionThresholds(0.5)
	}
	part.SetPopulationBenefits()

	mode := "regular"
	if cfg.Bounded {
		mode = "bounded"
	}
	return &Instance{
		Name:   fmt.Sprintf("%s/%s/s=%d/%s", cfg.Dataset, cfg.Formation, cfg.SizeCap, mode),
		G:      g,
		Part:   part,
		Config: cfg,
	}, nil
}
