package expt

import (
	"fmt"
	"io"
	"math"

	"imc/internal/plot"
)

// RenderRowsPlot draws one ASCII chart per panel. The plotted metric is
// chosen per panel: benefit when any row has one, then runtime, then
// the Fig. 8 ratio.
func RenderRowsPlot(w io.Writer, title string, rows []Row) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	type panelData struct {
		xs     []string
		xIdx   map[string]int
		series map[string][]float64
		algs   []string
	}
	panelOrder := make([]string, 0, len(rows))
	panels := make(map[string]*panelData)
	metric := metricFor(rows)
	for _, r := range rows {
		p, ok := panels[r.Panel]
		if !ok {
			p = &panelData{xIdx: make(map[string]int), series: make(map[string][]float64)}
			panels[r.Panel] = p
			panelOrder = append(panelOrder, r.Panel)
		}
		if _, ok := p.xIdx[r.X]; !ok {
			p.xIdx[r.X] = len(p.xs)
			p.xs = append(p.xs, r.X)
			for alg := range p.series {
				p.series[alg] = append(p.series[alg], math.NaN())
			}
		}
		if _, ok := p.series[r.Alg]; !ok {
			ys := make([]float64, len(p.xs))
			for i := range ys {
				ys[i] = math.NaN()
			}
			p.series[r.Alg] = ys
			p.algs = append(p.algs, r.Alg)
		}
		// Rows may arrive before later x positions exist; normalize
		// lengths first.
		for alg, ys := range p.series {
			for len(ys) < len(p.xs) {
				ys = append(ys, math.NaN())
			}
			p.series[alg] = ys
		}
		p.series[r.Alg][p.xIdx[r.X]] = metric(r)
	}
	for _, name := range panelOrder {
		p := panels[name]
		series := make([]plot.Series, 0, len(p.algs))
		for _, alg := range p.algs {
			series = append(series, plot.Series{Name: alg, Y: p.series[alg]})
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if err := plot.Chart(w, "panel "+name, p.xs, series, 48, 12); err != nil {
			return err
		}
	}
	return nil
}

// metricFor picks which Row field to plot: benefit if any row carries
// one, else runtime, else ratio.
func metricFor(rows []Row) func(Row) float64 {
	anyBenefit, anyRuntime := false, false
	for _, r := range rows {
		if r.Benefit != 0 {
			anyBenefit = true
		}
		if r.RuntimeSec != 0 {
			anyRuntime = true
		}
	}
	switch {
	case anyBenefit:
		return func(r Row) float64 { return r.Benefit }
	case anyRuntime:
		return func(r Row) float64 { return r.RuntimeSec }
	default:
		return func(r Row) float64 { return r.Ratio }
	}
}
