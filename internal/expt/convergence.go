package expt

import (
	"fmt"
	"math"

	"imc/internal/diffusion"
	"imc/internal/maxr"
	"imc/internal/ric"
)

// Convergence measures RIC-estimator quality as the pool doubles: for
// a fixed seed set (greedy on a warm-up pool), it reports ĉ_R(S) at
// each pool size against a high-effort forward Monte-Carlo reference.
// Not a paper figure — it is the natural appendix experiment
// certifying Lemma 1's estimator in practice, and the bench suite uses
// it to watch for estimator regressions.
//
// Returned rows: Panel = dataset, X = "R=<pool size>", Benefit = ĉ_R,
// Ratio = relative error |ĉ_R − c_MC| / max(c_MC, 1).
func Convergence(cfg Config) ([]Row, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if datasets == nil {
		datasets = []string{"facebook"}
	}
	k := 10
	if len(cfg.Ks) > 0 {
		k = cfg.Ks[0]
	}
	var rows []Row
	for _, ds := range datasets {
		inst, err := BuildInstance(InstanceConfig{
			Dataset: ds,
			Scale:   cfg.scaleOf(ds),
			Bounded: true,
			Seed:    cfg.Run.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Fix a seed set from a warm-up pool so every measurement
		// evaluates the same S.
		warm, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: cfg.Run.Seed, Workers: cfg.Run.Workers})
		if err != nil {
			return nil, err
		}
		if err := warm.Generate(2000); err != nil {
			return nil, err
		}
		res, err := (maxr.UBG{}).Solve(warm, k)
		if err != nil {
			return nil, err
		}
		seeds := res.Seeds

		reference, err := diffusion.EstimateBenefit(inst.G, inst.Part, seeds, diffusion.MCOptions{
			Iterations: 20000,
			Seed:       cfg.Run.Seed + 7,
			Workers:    cfg.Run.Workers,
		})
		if err != nil {
			return nil, err
		}

		pool, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: cfg.Run.Seed + 13, Workers: cfg.Run.Workers})
		if err != nil {
			return nil, err
		}
		size := 250
		limit := cfg.Run.MaxSamples
		if limit > 1<<15 {
			limit = 1 << 15
		}
		if err := pool.Generate(size); err != nil {
			return nil, err
		}
		for {
			chat := pool.CHat(seeds)
			rows = append(rows, Row{
				Panel:   ds,
				X:       fmt.Sprintf("R=%d", pool.NumSamples()),
				Alg:     AlgUBG,
				Benefit: chat,
				Ratio:   math.Abs(chat-reference) / math.Max(reference, 1),
			})
			if pool.NumSamples()*2 > limit {
				break
			}
			if err := pool.Double(); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}
