package expt

import "fmt"

// Extensions compares the library's beyond-the-paper variants against
// the paper's solvers on one benefit-vs-k sweep: UBG with local-search
// refinement (UBG+LS) and degree-discount (DD) alongside UBG, MAF and
// IM. Not a paper figure; it quantifies what the extension knobs buy.
func Extensions(cfg Config) ([]Row, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if datasets == nil {
		datasets = []string{"facebook", "wikivote"}
	}
	ks := cfg.Ks
	if ks == nil {
		ks = []int{10, 30}
	}
	algs := []string{AlgUBG, AlgUBGLS, AlgMAF, AlgDD, AlgIM}
	rows := make([]Row, 0, len(datasets)*len(ks)*len(algs))
	for _, ds := range datasets {
		inst, err := BuildInstance(InstanceConfig{
			Dataset: ds,
			Scale:   cfg.scaleOf(ds),
			Bounded: true,
			Seed:    cfg.Run.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			for _, alg := range algs {
				row, err := runCell(cfg.Checkpoint, inst, alg, k, cfg.Run, "ext:"+ds, fmt.Sprintf("k=%d", k))
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}
