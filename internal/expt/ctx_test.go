package expt

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func ctxTestInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := BuildInstance(InstanceConfig{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRunAlgCtxCanceled(t *testing.T) {
	inst := ctxTestInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []string{AlgUBG, AlgMAF, AlgMB, AlgIM} {
		_, err := RunAlgCtx(ctx, inst, alg, 3, RunConfig{
			Seed: 1, Runs: 1, MaxSamples: 1 << 10, BTMaxRoots: 8,
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled (errors.Is)", alg, err)
		}
	}
}

// TestRunAlgCtxDeterminism asserts the tentpole contract at the top of
// the stack: a completed ctx-run selects byte-identical seeds and
// scores to the ctx-free run for every algorithm.
func TestRunAlgCtxDeterminism(t *testing.T) {
	inst := ctxTestInstance(t)
	cfg := RunConfig{Seed: 3, Runs: 1, MaxSamples: 1 << 11, EvalTMax: 1 << 11, BTMaxRoots: 8}
	for _, alg := range []string{AlgUBG, AlgMAF, AlgMB, AlgHBC, AlgKS, AlgIM} {
		plain, err := RunAlg(inst, alg, 4, cfg)
		if err != nil {
			t.Fatalf("%s plain: %v", alg, err)
		}
		withCtx, err := RunAlgCtx(context.Background(), inst, alg, 4, cfg)
		if err != nil {
			t.Fatalf("%s ctx: %v", alg, err)
		}
		if fmt.Sprint(plain.Seeds) != fmt.Sprint(withCtx.Seeds) {
			t.Errorf("%s: seeds diverge: %v vs %v", alg, plain.Seeds, withCtx.Seeds)
		}
		if plain.Benefit != withCtx.Benefit {
			t.Errorf("%s: benefit diverges: %v vs %v", alg, plain.Benefit, withCtx.Benefit)
		}
	}
}
