package expt

import (
	"fmt"
	"io"
	"time"

	"imc/internal/clock"
)

// WriteReport runs the complete evaluation (Table I and Figs. 4–8) and
// renders one self-contained Markdown report — the machine-generated
// counterpart of EXPERIMENTS.md. Budget accordingly: this executes
// every experiment at the configured scale.
func WriteReport(w io.Writer, cfg Config) error {
	cfg = cfg.normalized()
	now := clock.OrWall(cfg.Run.Now)
	start := now()
	fmt.Fprintf(w, "# IMC evaluation report\n\n")
	fmt.Fprintf(w, "Configuration: scale=%g, runs=%d, seed=%d, ε=δ=%g, maxSamples=%d.\n\n",
		cfg.Scale, cfg.Run.Runs, cfg.Run.Seed, cfg.Run.Eps, cfg.Run.MaxSamples)

	t1, err := Table1(cfg)
	if err != nil {
		return fmt.Errorf("expt: report table1: %w", err)
	}
	fmt.Fprintf(w, "## Table I — datasets\n\n")
	fmt.Fprintln(w, "| dataset | type | generator | nodes (paper) | edges (paper) |")
	fmt.Fprintln(w, "|---|---|---|---|---|")
	for _, r := range t1 {
		typ := "undirected"
		if r.Directed {
			typ = "directed"
		}
		fmt.Fprintf(w, "| %s | %s | %s | %d (%d) | %d (%d) |\n",
			r.Name, typ, r.Family, r.Nodes, r.PaperNodes, r.Edges, r.PaperEdges)
	}
	fmt.Fprintln(w)

	sections := []struct {
		title string
		run   func(Config) ([]Row, error)
	}{
		{"Fig. 4 — benefit vs community structure", Fig4},
		{"Fig. 5 — benefit vs k (regular thresholds)", Fig5},
		{"Fig. 6 — benefit vs k (bounded thresholds)", Fig6},
		{"Fig. 7 — selection runtime", Fig7},
		{"Fig. 8 — UBG sandwich ratio", Fig8},
	}
	for _, sec := range sections {
		rows, err := sec.run(cfg)
		if err != nil {
			return fmt.Errorf("expt: report %s: %w", sec.title, err)
		}
		fmt.Fprintf(w, "## %s\n\n", sec.title)
		fmt.Fprintln(w, "| panel | x | algorithm | benefit | runtime (s) | ratio |")
		fmt.Fprintln(w, "|---|---|---|---|---|---|")
		for _, r := range rows {
			fmt.Fprintf(w, "| %s | %s | %s | %.2f | %.3f | %.3f |\n",
				r.Panel, r.X, r.Alg, r.Benefit, r.RuntimeSec, r.Ratio)
		}
		fmt.Fprintln(w)
		if wins := WinCount(rows); len(wins) > 0 {
			fmt.Fprint(w, "Wins (best benefit per cell, ties shared):")
			for _, alg := range append(AllAlgorithms, AlgUBGLS, AlgDD) {
				if n := wins[alg]; n > 0 {
					fmt.Fprintf(w, " %s=%d", alg, n)
				}
			}
			fmt.Fprint(w, "\n\n")
		}
	}
	fmt.Fprintf(w, "_Generated in %s._\n", now().Sub(start).Round(time.Millisecond))
	return nil
}
