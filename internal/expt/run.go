package expt

import (
	"context"
	"fmt"
	"time"

	"imc/internal/baselines"
	"imc/internal/clock"
	"imc/internal/core"
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/ris"
	"imc/internal/stats"
)

// Algorithm names accepted by RunAlg, matching the paper's legends.
// AlgUBGLS is the extension variant: UBG followed by 1-swap local
// search (not in the paper; exposed for ablations).
const (
	AlgUBG   = "UBG"
	AlgMAF   = "MAF"
	AlgMB    = "MB"
	AlgHBC   = "HBC"
	AlgKS    = "KS"
	AlgIM    = "IM"
	AlgUBGLS = "UBG+LS"
	AlgDD    = "DD"
)

// AllAlgorithms lists every algorithm in the paper's plotting order.
var AllAlgorithms = []string{AlgUBG, AlgMAF, AlgMB, AlgHBC, AlgKS, AlgIM}

// RunConfig tunes how algorithms are executed and evaluated.
type RunConfig struct {
	// Eps, Delta are the paper's ε = δ = 0.2 defaults.
	Eps, Delta float64
	// Seed drives the run; run i of Runs uses Seed+i.
	Seed uint64
	// Runs averages this many independent repetitions (paper: 10).
	Runs int
	// MaxSamples caps the IMCAF pool (default 1<<17).
	MaxSamples int
	// EvalTMax caps the benefit-evaluation sample budget (default 1<<17).
	EvalTMax int
	// BTMaxRoots caps BT's root scan inside MB (0 = all roots).
	BTMaxRoots int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Model selects the propagation model (IC default, LT extension).
	Model diffusion.Model
	// Now supplies timestamps for runtime reporting; nil means the real
	// wall clock. Tests pin it to make timing-labelled output
	// reproducible. Only reporting reads it — never sampling.
	Now clock.Func
	// Checkpoint, when non-nil, receives solver checkpoints at every
	// pool-growth boundary so long solves survive a process restart. It
	// only fires for the core-solver algorithms (UBG, UBG+LS, MAF, MB) —
	// the baselines run to completion or not at all — and requires
	// Runs == 1: a multi-run average has no single resumable pool.
	Checkpoint core.CheckpointFunc
	// Resume restarts a (single-run, core-solver) selection from a
	// checkpoint taken by Checkpoint. With identical Spec and seed the
	// resumed run returns the byte-identical seed set and benefit the
	// uninterrupted run would have.
	Resume *core.Checkpoint
	// Grow, when non-nil, supplies pool samples for the core-solver
	// algorithms in place of plain generation (see core.Options.Grow) —
	// the pool cache's entry point. Like Checkpoint it requires
	// Runs == 1: each repetition uses a different seed, so one grow
	// session cannot serve them all.
	Grow core.GrowFunc
}

func (c RunConfig) normalized() RunConfig {
	if c.Eps == 0 {
		c.Eps = 0.2
	}
	if c.Delta == 0 {
		c.Delta = 0.2
	}
	if c.Runs < 1 {
		c.Runs = 1
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1 << 17
	}
	if c.EvalTMax <= 0 {
		c.EvalTMax = 1 << 17
	}
	if c.Model == 0 {
		c.Model = diffusion.IC
	}
	return c
}

// AlgResult is one algorithm's averaged outcome on one instance.
type AlgResult struct {
	// Alg names the algorithm.
	Alg string
	// Benefit is the expected benefit of influenced communities of the
	// selected seeds, averaged over runs (Dagum-estimated, as in the
	// paper's evaluation protocol).
	Benefit float64
	// BenefitCI95 is the 95% confidence half-width across runs (0 for a
	// single run).
	BenefitCI95 float64
	// Runtime is the mean wall-clock seed-selection time.
	Runtime time.Duration
	// SandwichRatio is the mean ĉ_R/ν̂_R of UBG runs (0 otherwise).
	SandwichRatio float64
	// Seeds is the seed set of the final run (reported for inspection;
	// the Benefit average is across runs).
	Seeds []graph.NodeID
}

// RunAlg executes one algorithm on an instance with budget k, averaging
// over cfg.Runs repetitions. Selection time is measured; seed quality
// is then scored with the same Dagum estimator for every algorithm so
// comparisons are apples-to-apples.
func RunAlg(inst *Instance, alg string, k int, cfg RunConfig) (AlgResult, error) {
	return RunAlgCtx(context.Background(), inst, alg, k, cfg)
}

// RunAlgCtx is RunAlg with cooperative cancellation: ctx is checked
// between repetitions and threaded through seed selection and benefit
// evaluation, so a cancelled run surfaces context.Canceled (wrapped,
// errors.Is-matchable) within one kernel batch.
//
//imc:longrun
func RunAlgCtx(ctx context.Context, inst *Instance, alg string, k int, cfg RunConfig) (AlgResult, error) {
	cfg = cfg.normalized()
	if (cfg.Checkpoint != nil || cfg.Resume != nil || cfg.Grow != nil) && cfg.Runs != 1 {
		return AlgResult{}, fmt.Errorf("expt: checkpoint/resume/grow requires Runs == 1, got %d", cfg.Runs)
	}
	out := AlgResult{Alg: alg}
	var acc stats.Running
	for run := 0; run < cfg.Runs; run++ {
		if err := ctx.Err(); err != nil {
			return AlgResult{}, fmt.Errorf("expt: %s run %d: %w", alg, run, err)
		}
		seedBase := cfg.Seed + uint64(run)*1_000_003
		seeds, elapsed, ratio, err := selectSeeds(ctx, inst, alg, k, cfg, seedBase)
		if err != nil {
			return AlgResult{}, fmt.Errorf("expt: %s run %d: %w", alg, run, err)
		}
		benefit, err := evaluateBenefit(ctx, inst, seeds, cfg, seedBase)
		if err != nil {
			return AlgResult{}, fmt.Errorf("expt: %s run %d eval: %w", alg, run, err)
		}
		acc.Add(benefit)
		out.Runtime += elapsed
		out.SandwichRatio += ratio
		out.Seeds = seeds
	}
	out.Benefit = acc.Mean()
	out.BenefitCI95 = acc.CI95()
	out.Runtime /= time.Duration(cfg.Runs)
	out.SandwichRatio /= float64(cfg.Runs)
	return out, nil
}

func selectSeeds(ctx context.Context, inst *Instance, alg string, k int, cfg RunConfig, seed uint64) ([]graph.NodeID, time.Duration, float64, error) {
	now := clock.OrWall(cfg.Now)
	opts := core.Options{
		K:          k,
		Eps:        cfg.Eps,
		Delta:      cfg.Delta,
		Seed:       seed,
		Workers:    cfg.Workers,
		MaxSamples: cfg.MaxSamples,
		Model:      cfg.Model,
		Clock:      cfg.Now,
		// Checkpoint/Resume reach only the core-solver branches below;
		// the baseline branches never consult opts, so a checkpointed
		// baseline job simply restarts from scratch (they are cheap).
		Checkpoint: cfg.Checkpoint,
		Resume:     cfg.Resume,
		Grow:       cfg.Grow,
	}
	switch alg {
	case AlgUBG:
		sol, err := core.SolveCtx(ctx, inst.G, inst.Part, maxr.UBG{}, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		return sol.Seeds, sol.Elapsed, sol.SandwichRatio, nil
	case AlgUBGLS:
		sol, err := core.SolveCtx(ctx, inst.G, inst.Part, maxr.Refined{Base: maxr.UBG{}}, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		return sol.Seeds, sol.Elapsed, sol.SandwichRatio, nil
	case AlgMAF:
		sol, err := core.SolveCtx(ctx, inst.G, inst.Part, maxr.MAF{Seed: seed}, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		return sol.Seeds, sol.Elapsed, 0, nil
	case AlgMB:
		solver := maxr.MB{MAF: maxr.MAF{Seed: seed}, BT: maxr.BT{MaxRoots: cfg.BTMaxRoots}}
		sol, err := core.SolveCtx(ctx, inst.G, inst.Part, solver, opts)
		if err != nil {
			return nil, 0, 0, err
		}
		return sol.Seeds, sol.Elapsed, 0, nil
	case AlgHBC:
		start := now()
		seeds, err := baselines.HBC(inst.G, inst.Part, k)
		return seeds, now().Sub(start), 0, err
	case AlgKS:
		start := now()
		seeds, err := baselines.KS(inst.G, inst.Part, k)
		return seeds, now().Sub(start), 0, err
	case AlgDD:
		start := now()
		seeds, err := baselines.DegreeDiscount(inst.G, k, 0.01)
		return seeds, now().Sub(start), 0, err
	case AlgIM:
		start := now()
		seeds, err := baselines.IMCtx(ctx, inst.G, inst.Part, k, ris.Options{
			Eps:        cfg.Eps,
			Delta:      cfg.Delta,
			Seed:       seed,
			Workers:    cfg.Workers,
			MaxSamples: cfg.MaxSamples,
			Model:      cfg.Model,
			Clock:      cfg.Now,
		})
		return seeds, now().Sub(start), 0, err
	default:
		return nil, 0, 0, fmt.Errorf("unknown algorithm %q (valid: %v)", alg, AllAlgorithms)
	}
}

// evaluateBenefit scores a seed set with the Dagum stopping-rule
// estimator (the paper scores baselines the same way).
func evaluateBenefit(ctx context.Context, inst *Instance, seeds []graph.NodeID, cfg RunConfig, seed uint64) (float64, error) {
	est, err := core.EstimateCtx(ctx, inst.G, inst.Part, seeds, core.EstimateOptions{
		Eps:   cfg.Eps,
		Delta: cfg.Delta,
		TMax:  cfg.EvalTMax,
		Seed:  seed ^ 0x0f0f0f0f0f0f0f0f,
		Model: cfg.Model,
	})
	if err != nil {
		return 0, err
	}
	// Non-convergence means the benefit is too small to certify within
	// the budget; the running mean is still the best available score.
	return est.Benefit, nil
}
