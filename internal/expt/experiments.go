package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"imc/internal/diffusion"
	"imc/internal/maxr"
	"imc/internal/ric"
)

// Config parameterizes a whole experiment (one table or figure).
type Config struct {
	// Scale shrinks every dataset analog; (0, 1]. The defaults in
	// cmd/imcbench keep single-core runtimes reasonable.
	Scale float64
	// ScaleFor overrides Scale per dataset (e.g. facebook can run at
	// its true size while pokec stays scaled down).
	ScaleFor map[string]float64
	// Run configures algorithm execution.
	Run RunConfig
	// Ks overrides the seed-budget sweep where applicable.
	Ks []int
	// SizeCaps overrides Fig. 4's community-size-cap sweep.
	SizeCaps []int
	// Datasets overrides the dataset list where applicable.
	Datasets []string
	// Checkpoint, when non-nil, persists finished cells and serves them
	// on re-runs so interrupted sweeps resume instead of recomputing.
	Checkpoint *Checkpoint
}

func (c Config) normalized() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 0.05
	}
	c.Run = c.Run.normalized()
	return c
}

// scaleOf resolves the effective scale for one dataset.
func (c Config) scaleOf(dataset string) float64 {
	if s, ok := c.ScaleFor[dataset]; ok && s > 0 && s <= 1 {
		return s
	}
	return c.Scale
}

// Row is one data point of a figure: a (panel, x, algorithm) triple
// with the measured quantities.
type Row struct {
	// Panel identifies the sub-plot, e.g. "facebook/louvain".
	Panel string
	// X is the swept variable rendered as "k=10" or "s=8".
	X string
	// Alg names the algorithm.
	Alg string
	// Benefit is the estimated expected benefit (0 for runtime-only
	// figures).
	Benefit float64
	// BenefitCI95 is the 95% confidence half-width across runs (0 for a
	// single run).
	BenefitCI95 float64
	// RuntimeSec is the mean selection time in seconds.
	RuntimeSec float64
	// Ratio is Fig. 8's c(S_ν)/ν(S_ν) (0 elsewhere).
	Ratio float64
}

// RenderRows pretty-prints figure rows as an aligned table.
func RenderRows(w io.Writer, title string, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", title)
	fmt.Fprintln(tw, "panel\tx\talgorithm\tbenefit\t±95%\truntime(s)\tratio")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%.2f\t%.3f\t%.3f\n",
			r.Panel, r.X, r.Alg, r.Benefit, r.BenefitCI95, r.RuntimeSec, r.Ratio)
	}
	return tw.Flush()
}

// RenderRowsCSV emits figure rows as CSV for external plotting.
func RenderRowsCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"panel", "x", "algorithm", "benefit", "benefit_ci95", "runtime_sec", "ratio"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Panel,
			r.X,
			r.Alg,
			strconv.FormatFloat(r.Benefit, 'f', 4, 64),
			strconv.FormatFloat(r.BenefitCI95, 'f', 4, 64),
			strconv.FormatFloat(r.RuntimeSec, 'f', 6, 64),
			strconv.FormatFloat(r.Ratio, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WinCount summarizes how often each algorithm achieved the best
// benefit across the (panel, x) cells of a row set — the "who wins"
// digest used in reports. Ties award every tied algorithm.
func WinCount(rows []Row) map[string]int {
	type cell struct{ panel, x string }
	best := make(map[cell]float64)
	for _, r := range rows {
		c := cell{r.Panel, r.X}
		if r.Benefit > best[c] {
			best[c] = r.Benefit
		}
	}
	wins := make(map[string]int)
	for _, r := range rows {
		c := cell{r.Panel, r.X}
		if r.Benefit > 0 && r.Benefit >= best[c]-1e-9 {
			wins[r.Alg]++
		}
	}
	return wins
}

// Table1Row is one dataset-statistics row (paper Table I).
type Table1Row struct {
	Name       string
	Family     string
	Directed   bool
	Nodes      int
	Edges      int
	PaperNodes int
	PaperEdges int
}

// Table1 regenerates the dataset-statistics table against the synthetic
// analogs at the given scale.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if datasets == nil {
		datasets = defaultDatasets()
	}
	reg := registry()
	rows := make([]Table1Row, 0, len(datasets))
	for _, name := range datasets {
		d, ok := reg[name]
		if !ok {
			return nil, fmt.Errorf("expt: unknown dataset %q", name)
		}
		g, err := d.Build(cfg.scaleOf(name), cfg.Run.Seed)
		if err != nil {
			return nil, err
		}
		edges := g.NumEdges()
		if !d.Directed {
			edges /= 2 // report undirected edge count like the paper
		}
		rows = append(rows, Table1Row{
			Name:       d.Name,
			Family:     d.Family,
			Directed:   d.Directed,
			Nodes:      g.NumNodes(),
			Edges:      edges,
			PaperNodes: d.PaperNodes,
			PaperEdges: d.PaperEdges,
		})
	}
	return rows, nil
}

// RenderTable1 pretty-prints Table I rows.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table I: dataset statistics (synthetic analogs; paper values in parentheses)")
	fmt.Fprintln(tw, "data\ttype\tgenerator\tnodes\tedges")
	for _, r := range rows {
		typ := "Undirected"
		if r.Directed {
			typ = "Directed"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d (%d)\t%d (%d)\n",
			r.Name, typ, r.Family, r.Nodes, r.PaperNodes, r.Edges, r.PaperEdges)
	}
	return tw.Flush()
}

// Fig4 compares solution quality across community formations and size
// caps s at fixed k=10: (a) facebook/Louvain, (b) facebook/Random,
// (c) facebook/Louvain with bounded thresholds, (d) dblp/Louvain.
func Fig4(cfg Config) ([]Row, error) {
	cfg = cfg.normalized()
	caps := cfg.SizeCaps
	if caps == nil {
		caps = []int{4, 8, 16, 32}
	}
	k := 10
	if len(cfg.Ks) > 0 {
		k = cfg.Ks[0]
	}
	type panel struct {
		name      string
		dataset   string
		formation Formation
		bounded   bool
		algs      []string
	}
	regular := []string{AlgUBG, AlgMAF, AlgHBC, AlgKS, AlgIM}
	bounded := []string{AlgUBG, AlgMAF, AlgMB, AlgHBC, AlgKS, AlgIM}
	panels := []panel{
		{"a:facebook/louvain", "facebook", Louvain, false, regular},
		{"b:facebook/random", "facebook", RandomFormation, false, regular},
		{"c:facebook/bounded", "facebook", Louvain, true, bounded},
		{"d:dblp/louvain", "dblp", Louvain, false, regular},
	}
	cells := 0
	for _, p := range panels {
		cells += len(caps) * len(p.algs)
	}
	rows := make([]Row, 0, cells)
	for _, p := range panels {
		for _, s := range caps {
			inst, err := BuildInstance(InstanceConfig{
				Dataset:   p.dataset,
				Scale:     cfg.scaleOf(p.dataset),
				Formation: p.formation,
				SizeCap:   s,
				Bounded:   p.bounded,
				Seed:      cfg.Run.Seed,
			})
			if err != nil {
				return nil, err
			}
			for _, alg := range p.algs {
				row, err := runCell(cfg.Checkpoint, inst, alg, k, cfg.Run, p.name, fmt.Sprintf("s=%d", s))
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// Fig5 compares benefit versus seed budget k under regular (50%)
// thresholds.
func Fig5(cfg Config) ([]Row, error) {
	cfg = cfg.normalized()
	return benefitVsK(cfg, false, []string{AlgUBG, AlgMAF, AlgHBC, AlgKS, AlgIM}, nil)
}

// Fig6 compares benefit versus k under bounded thresholds (h=2),
// including MB. Mirroring the paper (which discarded MB's Pokec runs
// for exceeding the runtime limit), MB is skipped on the final —
// largest — dataset of the sweep.
func Fig6(cfg Config) ([]Row, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if datasets == nil {
		datasets = defaultDatasets()
	}
	skipMB := map[string]bool{datasets[len(datasets)-1]: true}
	return benefitVsK(cfg, true, []string{AlgUBG, AlgMAF, AlgMB, AlgHBC, AlgKS, AlgIM}, skipMB)
}

func benefitVsK(cfg Config, bounded bool, algs []string, skipMB map[string]bool) ([]Row, error) {
	ks := cfg.Ks
	if ks == nil {
		ks = []int{5, 10, 20, 30, 40, 50}
	}
	datasets := cfg.Datasets
	if datasets == nil {
		datasets = defaultDatasets()
	}
	rows := make([]Row, 0, len(datasets)*len(ks)*len(algs))
	for _, ds := range datasets {
		inst, err := BuildInstance(InstanceConfig{
			Dataset: ds,
			Scale:   cfg.scaleOf(ds),
			Bounded: bounded,
			Seed:    cfg.Run.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			for _, alg := range algs {
				if alg == AlgMB && skipMB[ds] {
					continue
				}
				// Key bounded/regular separately so one checkpoint file
				// can serve both Fig. 5 and Fig. 6.
				panelKey := ds
				if bounded {
					panelKey = "bounded:" + ds
				}
				row, err := runCell(cfg.Checkpoint, inst, alg, k, cfg.Run, panelKey, fmt.Sprintf("k=%d", k))
				if err != nil {
					return nil, err
				}
				row.Panel = ds
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// Fig7 measures seed-selection runtime on the two largest datasets:
// panel (a) bounded thresholds with MAF/UBG/MB (MB skipped on the
// largest, as in the paper), panel (b) regular thresholds with MAF/UBG.
func Fig7(cfg Config) ([]Row, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if datasets == nil {
		datasets = []string{"dblp", "pokec"}
	}
	ks := cfg.Ks
	if ks == nil {
		ks = []int{10, 50, 100}
	}
	largest := datasets[len(datasets)-1]
	// Two regular algorithms plus three bounded ones: five cells per
	// (dataset, k) pair across the two modes.
	rows := make([]Row, 0, 5*len(datasets)*len(ks))
	for _, bounded := range []bool{true, false} {
		panelTag := "b:regular"
		algs := []string{AlgMAF, AlgUBG}
		if bounded {
			panelTag = "a:bounded"
			algs = []string{AlgMAF, AlgUBG, AlgMB}
		}
		for _, ds := range datasets {
			inst, err := BuildInstance(InstanceConfig{
				Dataset: ds,
				Scale:   cfg.scaleOf(ds),
				Bounded: bounded,
				Seed:    cfg.Run.Seed,
			})
			if err != nil {
				return nil, err
			}
			for _, k := range ks {
				for _, alg := range algs {
					if alg == AlgMB && ds == largest {
						continue
					}
					if row, ok := cfg.Checkpoint.lookup(panelTag+"/"+ds, fmt.Sprintf("k=%d", k), alg); ok {
						rows = append(rows, row)
						continue
					}
					res, err := RunAlg(inst, alg, k, cfg.Run)
					if err != nil {
						return nil, err
					}
					row := Row{
						Panel:      panelTag + "/" + ds,
						X:          fmt.Sprintf("k=%d", k),
						Alg:        alg,
						RuntimeSec: res.Runtime.Seconds(),
						Benefit:    res.Benefit,
					}
					if err := cfg.Checkpoint.record(row); err != nil {
						return nil, err
					}
					rows = append(rows, row)
				}
			}
		}
	}
	return rows, nil
}

// Fig8 measures UBG's empirical sandwich ratio c(S_ν)/ν(S_ν) versus k,
// in both threshold regimes, estimating c and ν by Monte Carlo exactly
// as the paper describes.
func Fig8(cfg Config) ([]Row, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if datasets == nil {
		datasets = []string{"facebook", "wikivote"}
	}
	ks := cfg.Ks
	if ks == nil {
		ks = []int{5, 10, 20, 50}
	}
	rows := make([]Row, 0, 2*len(datasets)*len(ks))
	for _, bounded := range []bool{false, true} {
		mode := "regular"
		if bounded {
			mode = "bounded"
		}
		for _, ds := range datasets {
			inst, err := BuildInstance(InstanceConfig{
				Dataset: ds,
				Scale:   cfg.scaleOf(ds),
				Bounded: bounded,
				Seed:    cfg.Run.Seed,
			})
			if err != nil {
				return nil, err
			}
			for _, k := range ks {
				if row, ok := cfg.Checkpoint.lookup(mode+"/"+ds, fmt.Sprintf("k=%d", k), AlgUBG); ok {
					rows = append(rows, row)
					continue
				}
				ratio, err := SandwichRatioMC(inst, k, cfg.Run)
				if err != nil {
					return nil, err
				}
				row := Row{
					Panel: mode + "/" + ds,
					X:     fmt.Sprintf("k=%d", k),
					Alg:   AlgUBG,
					Ratio: ratio,
				}
				if err := cfg.Checkpoint.record(row); err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// SandwichRatioMC computes Fig. 8's statistic: obtain S_ν by greedy on
// ν_R over a fixed pool, then Monte-Carlo estimate c(S_ν) and ν(S_ν)
// with forward cascades.
func SandwichRatioMC(inst *Instance, k int, cfg RunConfig) (float64, error) {
	cfg = cfg.normalized()
	poolSize := cfg.MaxSamples / 8
	if poolSize < 2000 {
		poolSize = 2000
	}
	pool, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: cfg.Seed, Workers: cfg.Workers, Model: cfg.Model})
	if err != nil {
		return 0, err
	}
	if err := pool.Generate(poolSize); err != nil {
		return 0, err
	}
	seeds, err := maxr.GreedyNu(pool, k)
	if err != nil {
		return 0, err
	}
	mc := diffusion.MCOptions{Iterations: 4000, Seed: cfg.Seed + 1, Workers: cfg.Workers, Model: cfg.Model}
	c, err := diffusion.EstimateBenefit(inst.G, inst.Part, seeds, mc)
	if err != nil {
		return 0, err
	}
	nu, err := diffusion.EstimateFractionalBenefit(inst.G, inst.Part, seeds, mc)
	if err != nil {
		return 0, err
	}
	if nu <= 0 {
		return 0, nil
	}
	return c / nu, nil
}
