package expt

import "imc/internal/gen"

// defaultDatasets returns the four benefit-vs-k datasets used by the
// Fig. 5/6 sweeps (pokec is reserved for the runtime figure by default;
// pass Config.Datasets to include it).
func defaultDatasets() []string {
	return []string{"facebook", "wikivote", "epinions", "dblp"}
}

// registry re-exports the dataset registry for Table I.
func registry() map[string]gen.Dataset { return gen.Registry() }
