package expt

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	row := Row{Panel: "p", X: "k=5", Alg: "UBG", Benefit: 12.5, RuntimeSec: 0.25}
	if err := ck.record(row); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	back, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Len() != 1 {
		t.Fatalf("reloaded %d cells", back.Len())
	}
	got, ok := back.lookup("p", "k=5", "UBG")
	if !ok {
		t.Fatal("cell missing after reload")
	}
	if got != row {
		t.Fatalf("cell mangled: %+v vs %+v", got, row)
	}
	if _, ok := back.lookup("p", "k=6", "UBG"); ok {
		t.Fatal("phantom cell")
	}
}

func TestCheckpointToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	content := `{"panel":"p","x":"k=1","alg":"UBG","benefit":1,"runtimeSec":0,"ratio":0}
{"panel":"p","x":"k=2","alg":"UBG","benef` // torn mid-write
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Len() != 1 {
		t.Fatalf("torn tail not dropped: %d cells", ck.Len())
	}
}

func TestCheckpointNilIsNoOp(t *testing.T) {
	var ck *Checkpoint
	if _, ok := ck.lookup("p", "x", "a"); ok {
		t.Fatal("nil lookup hit")
	}
	if err := ck.record(Row{}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if ck.Len() != 0 {
		t.Fatal("nil Len")
	}
}

func TestCheckpointValidation(t *testing.T) {
	if _, err := OpenCheckpoint(""); err == nil {
		t.Fatal("want empty-path error")
	}
}

// TestFigWithCheckpointResumes runs Fig5 twice against one checkpoint:
// the second pass must serve everything from the file (verified by it
// succeeding instantly with identical rows).
func TestFigWithCheckpointResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig5.jsonl")
	cfg := tinyCfg()
	cfg.Ks = []int{3}
	cfg.Datasets = []string{"facebook"}

	ck1, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck1
	first, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ck1.Close()

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Len() != len(first) {
		t.Fatalf("checkpoint has %d cells, want %d", ck2.Len(), len(first))
	}
	cfg.Checkpoint = ck2
	second, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != len(first) {
		t.Fatalf("row counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("row %d differs on resume: %+v vs %+v", i, first[i], second[i])
		}
	}
}
