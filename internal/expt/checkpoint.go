package expt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// Checkpoint persists completed experiment cells to a JSON-lines file
// so an interrupted sweep resumes where it stopped instead of
// recomputing hours of work. Every (panel, x, algorithm) cell is
// written as soon as it finishes; on load, finished cells are served
// from the file.
//
// The zero value (or a nil *Checkpoint) is a no-op pass-through, so
// experiment code can use it unconditionally.
type Checkpoint struct {
	path string
	file *os.File
	done map[string]Row
}

// checkpointRecord is the wire form of one cell.
type checkpointRecord struct {
	Panel       string  `json:"panel"`
	X           string  `json:"x"`
	Alg         string  `json:"alg"`
	Benefit     float64 `json:"benefit"`
	BenefitCI95 float64 `json:"benefitCI95,omitempty"`
	RuntimeSec  float64 `json:"runtimeSec"`
	Ratio       float64 `json:"ratio"`
}

// OpenCheckpoint loads (or creates) a checkpoint file. Corrupt trailing
// lines — the signature of a crash mid-write — are tolerated and
// dropped.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	if path == "" {
		return nil, errors.New("expt: checkpoint path must be non-empty")
	}
	done := make(map[string]Row)
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var rec checkpointRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				break // torn tail line: stop replaying
			}
			row := Row{
				Panel:       rec.Panel,
				X:           rec.X,
				Alg:         rec.Alg,
				Benefit:     rec.Benefit,
				BenefitCI95: rec.BenefitCI95,
				RuntimeSec:  rec.RuntimeSec,
				Ratio:       rec.Ratio,
			}
			done[cellKey(row.Panel, row.X, row.Alg)] = row
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("expt: read checkpoint: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("expt: open checkpoint: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("expt: append checkpoint: %w", err)
	}
	return &Checkpoint{path: path, file: f, done: done}, nil
}

// Close releases the underlying file. Safe on nil.
func (c *Checkpoint) Close() error {
	if c == nil || c.file == nil {
		return nil
	}
	return c.file.Close()
}

// Len reports how many cells are already complete. Safe on nil.
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	return len(c.done)
}

// lookup returns a completed cell, if present. Safe on nil.
func (c *Checkpoint) lookup(panel, x, alg string) (Row, bool) {
	if c == nil {
		return Row{}, false
	}
	row, ok := c.done[cellKey(panel, x, alg)]
	return row, ok
}

// record persists a finished cell. Safe on nil.
func (c *Checkpoint) record(row Row) error {
	if c == nil {
		return nil
	}
	c.done[cellKey(row.Panel, row.X, row.Alg)] = row
	rec := checkpointRecord{
		Panel:       row.Panel,
		X:           row.X,
		Alg:         row.Alg,
		Benefit:     row.Benefit,
		BenefitCI95: row.BenefitCI95,
		RuntimeSec:  row.RuntimeSec,
		Ratio:       row.Ratio,
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("expt: marshal checkpoint row: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := c.file.Write(raw); err != nil {
		return fmt.Errorf("expt: write checkpoint row: %w", err)
	}
	return nil
}

func cellKey(panel, x, alg string) string {
	return panel + "\x00" + x + "\x00" + alg
}

// runCell executes one experiment cell through the checkpoint: cached
// rows are returned without recomputation, fresh rows are computed and
// persisted.
func runCell(ck *Checkpoint, inst *Instance, alg string, k int, run RunConfig, panel, x string) (Row, error) {
	if row, ok := ck.lookup(panel, x, alg); ok {
		return row, nil
	}
	res, err := RunAlg(inst, alg, k, run)
	if err != nil {
		return Row{}, err
	}
	row := Row{
		Panel:       panel,
		X:           x,
		Alg:         alg,
		Benefit:     res.Benefit,
		BenefitCI95: res.BenefitCI95,
		RuntimeSec:  res.Runtime.Seconds(),
	}
	if err := ck.record(row); err != nil {
		return Row{}, err
	}
	return row, nil
}

var _ io.Closer = (*Checkpoint)(nil)
