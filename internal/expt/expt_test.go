package expt

import (
	"bytes"
	"strings"
	"testing"

	"imc/internal/diffusion"
)

// tinyCfg keeps experiment tests fast on one core: microscopic datasets
// and small sampling budgets.
func tinyCfg() Config {
	return Config{
		Scale: 0.03,
		Run: RunConfig{
			Seed:       1,
			Runs:       1,
			MaxSamples: 1 << 12,
			EvalTMax:   1 << 12,
			BTMaxRoots: 8,
		},
		Ks:       []int{3, 6},
		SizeCaps: []int{4, 8},
		Datasets: []string{"facebook", "wikivote"},
	}
}

func TestBuildInstanceDefaults(t *testing.T) {
	inst, err := BuildInstance(InstanceConfig{Dataset: "facebook", Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if inst.G.NumNodes() < 16 {
		t.Fatalf("n = %d", inst.G.NumNodes())
	}
	if err := inst.Part.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range inst.Part.Sizes() {
		if s > 8 {
			t.Fatalf("community of size %d exceeds default cap 8", s)
		}
	}
	// Regular thresholds: h = ⌈|C|/2⌉.
	for i := 0; i < inst.Part.NumCommunities(); i++ {
		c := inst.Part.Community(i)
		want := (len(c.Members) + 1) / 2
		if c.Threshold != want {
			t.Fatalf("community %d: threshold %d, want %d", i, c.Threshold, want)
		}
		if c.Benefit != float64(len(c.Members)) {
			t.Fatalf("community %d: benefit %g, want population", i, c.Benefit)
		}
	}
	if !strings.Contains(inst.Name, "facebook/louvain/s=8/regular") {
		t.Fatalf("instance name %q", inst.Name)
	}
}

func TestBuildInstanceBoundedAndRandom(t *testing.T) {
	inst, err := BuildInstance(InstanceConfig{
		Dataset:   "wikivote",
		Scale:     0.03,
		Formation: RandomFormation,
		SizeCap:   6,
		Bounded:   true,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inst.Part.NumCommunities(); i++ {
		c := inst.Part.Community(i)
		want := 2
		if len(c.Members) < 2 {
			want = len(c.Members)
		}
		if c.Threshold != want {
			t.Fatalf("bounded threshold = %d for size %d", c.Threshold, len(c.Members))
		}
	}
	if !strings.Contains(inst.Name, "random") || !strings.Contains(inst.Name, "bounded") {
		t.Fatalf("instance name %q", inst.Name)
	}
}

func TestBuildInstanceUnknownDataset(t *testing.T) {
	if _, err := BuildInstance(InstanceConfig{Dataset: "nope"}); err == nil {
		t.Fatal("want error")
	}
}

func TestRunAlgAllAlgorithms(t *testing.T) {
	inst, err := BuildInstance(InstanceConfig{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg().Run
	for _, alg := range AllAlgorithms {
		res, err := RunAlg(inst, alg, 4, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Alg != alg {
			t.Fatalf("alg echo %q", res.Alg)
		}
		if res.Benefit < 0 || res.Benefit > inst.Part.TotalBenefit() {
			t.Fatalf("%s benefit %g out of range", alg, res.Benefit)
		}
	}
	if _, err := RunAlg(inst, "nope", 4, cfg); err == nil {
		t.Fatal("want unknown-algorithm error")
	}
	// Extension algorithms beyond the paper's legend.
	for _, alg := range []string{AlgUBGLS, AlgDD} {
		res, err := RunAlg(inst, alg, 4, cfg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Benefit < 0 || res.Benefit > inst.Part.TotalBenefit() {
			t.Fatalf("%s benefit %g out of range", alg, res.Benefit)
		}
	}
}

func TestRunAlgAveragesRuns(t *testing.T) {
	inst, err := BuildInstance(InstanceConfig{Dataset: "facebook", Scale: 0.03, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg().Run
	cfg.Runs = 3
	res, err := RunAlg(inst, AlgMAF, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit <= 0 {
		t.Fatalf("averaged benefit %g", res.Benefit)
	}
}

func TestTable1(t *testing.T) {
	cfg := tinyCfg()
	cfg.Datasets = nil // all five
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // defaultDatasets excludes pokec
		t.Fatalf("got %d rows", len(rows))
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"facebook", "wikivote", "747", "Table I"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	cfg := tinyCfg()
	cfg.SizeCaps = []int{4}
	cfg.Ks = []int{4}
	rows, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 panels × 1 cap × (5 or 6 algorithms).
	if len(rows) != 5+5+6+5 {
		t.Fatalf("got %d rows", len(rows))
	}
	panels := map[string]bool{}
	for _, r := range rows {
		panels[r.Panel] = true
		if r.X != "s=4" {
			t.Fatalf("x = %q", r.X)
		}
	}
	if len(panels) != 4 {
		t.Fatalf("panels = %v", panels)
	}
}

func TestFig5AndFig6Shape(t *testing.T) {
	cfg := tinyCfg()
	rows5, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 2 ks × 5 algs.
	if len(rows5) != 20 {
		t.Fatalf("fig5: %d rows", len(rows5))
	}
	rows6, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 2 ks × 6 algs, minus MB on the last dataset (2 ks).
	if len(rows6) != 24-2 {
		t.Fatalf("fig6: %d rows", len(rows6))
	}
	sawMBOnLast := false
	for _, r := range rows6 {
		if r.Alg == AlgMB && r.Panel == "wikivote" {
			sawMBOnLast = true
		}
	}
	if sawMBOnLast {
		t.Fatal("MB should be skipped on the largest dataset")
	}
}

func TestFig7Shape(t *testing.T) {
	cfg := tinyCfg()
	cfg.Datasets = []string{"facebook", "wikivote"}
	cfg.Ks = []int{3}
	rows, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// bounded: fb(MAF,UBG,MB) + wv(MAF,UBG) = 5; regular: 2+2 = 4.
	if len(rows) != 9 {
		t.Fatalf("fig7: %d rows", len(rows))
	}
	for _, r := range rows {
		if r.RuntimeSec < 0 {
			t.Fatalf("negative runtime in %+v", r)
		}
	}
}

func TestFig8RatioInRange(t *testing.T) {
	cfg := tinyCfg()
	cfg.Ks = []int{3}
	cfg.Datasets = []string{"facebook"}
	rows, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // regular + bounded
		t.Fatalf("fig8: %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Ratio < 0 || r.Ratio > 1.15 { // MC noise can nudge past 1
			t.Fatalf("ratio %g out of range in %+v", r.Ratio, r)
		}
	}
}

func TestRenderRows(t *testing.T) {
	var buf bytes.Buffer
	err := RenderRows(&buf, "demo", []Row{{Panel: "p", X: "k=1", Alg: "UBG", Benefit: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "UBG") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestFormationString(t *testing.T) {
	if Louvain.String() != "louvain" || RandomFormation.String() != "random" {
		t.Fatal("formation strings")
	}
	if Formation(9).String() != "Formation(9)" {
		t.Fatal("unknown formation string")
	}
}

// TestRunAlgLTModel exercises the harness end to end under the Linear
// Threshold extension.
func TestRunAlgLTModel(t *testing.T) {
	inst, err := BuildInstance(InstanceConfig{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCfg().Run
	cfg.Model = diffusion.LT
	for _, alg := range []string{AlgUBG, AlgMAF, AlgIM} {
		res, err := RunAlg(inst, alg, 4, cfg)
		if err != nil {
			t.Fatalf("LT %s: %v", alg, err)
		}
		if res.Benefit < 0 || res.Benefit > inst.Part.TotalBenefit() {
			t.Fatalf("LT %s benefit %g out of range", alg, res.Benefit)
		}
	}
}

// TestRenderRowsCSV checks the CSV output path used for plotting.
func TestRenderRowsCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []Row{
		{Panel: "p1", X: "k=5", Alg: "UBG", Benefit: 1.25, RuntimeSec: 0.5},
		{Panel: "p2", X: "k=10", Alg: "MAF", Ratio: 0.75},
	}
	if err := RenderRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines: %v", lines)
	}
	if lines[0] != "panel,x,algorithm,benefit,benefit_ci95,runtime_sec,ratio" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "p1,k=5,UBG,1.2500,") {
		t.Fatalf("row %q", lines[1])
	}
}

// TestConvergenceShrinksError runs the estimator-quality experiment
// and asserts the defining property: the relative error at the largest
// pool is below the error at the smallest (up to a small tolerance).
func TestConvergenceShrinksError(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.1
	cfg.Ks = []int{5}
	cfg.Datasets = []string{"facebook"}
	cfg.Run.MaxSamples = 1 << 14
	rows, err := Convergence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d pool sizes measured", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if last.Ratio > first.Ratio+0.05 {
		t.Fatalf("relative error grew from %g (R small) to %g (R large)", first.Ratio, last.Ratio)
	}
	if last.Ratio > 0.2 {
		t.Fatalf("final relative error %g too large", last.Ratio)
	}
}

// TestExtensionsShape runs the extensions comparison at tiny scale.
func TestExtensionsShape(t *testing.T) {
	cfg := tinyCfg()
	cfg.Ks = []int{3}
	cfg.Datasets = []string{"facebook"}
	rows, err := Extensions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // 1 dataset × 1 k × 5 algorithms
		t.Fatalf("got %d rows", len(rows))
	}
	var ubg, ubgLS float64
	for _, r := range rows {
		switch r.Alg {
		case AlgUBG:
			ubg = r.Benefit
		case AlgUBGLS:
			ubgLS = r.Benefit
		}
	}
	// Local search never regresses pool coverage; the Dagum-scored
	// benefit may wiggle, so allow generous noise.
	if ubgLS < 0.6*ubg {
		t.Fatalf("UBG+LS %g implausibly below UBG %g", ubgLS, ubg)
	}
}

// TestWinCount checks the who-wins digest.
func TestWinCount(t *testing.T) {
	rows := []Row{
		{Panel: "p1", X: "k=5", Alg: "UBG", Benefit: 10},
		{Panel: "p1", X: "k=5", Alg: "KS", Benefit: 4},
		{Panel: "p1", X: "k=10", Alg: "UBG", Benefit: 20},
		{Panel: "p1", X: "k=10", Alg: "KS", Benefit: 20}, // tie
		{Panel: "p2", X: "k=5", Alg: "KS", Benefit: 7},
		{Panel: "p3", X: "k=5", Alg: "KS", Benefit: 0}, // zero never wins
	}
	wins := WinCount(rows)
	if wins["UBG"] != 2 {
		t.Fatalf("UBG wins = %d, want 2", wins["UBG"])
	}
	if wins["KS"] != 2 { // tie at p1/k=10 plus solo win at p2
		t.Fatalf("KS wins = %d, want 2", wins["KS"])
	}
}

// TestScaleForOverrides checks per-dataset scale resolution.
func TestScaleForOverrides(t *testing.T) {
	cfg := Config{Scale: 0.1, ScaleFor: map[string]float64{"facebook": 1.0, "bogus": -1}}
	if got := cfg.scaleOf("facebook"); got != 1.0 {
		t.Fatalf("facebook scale = %g", got)
	}
	if got := cfg.scaleOf("wikivote"); got != 0.1 {
		t.Fatalf("fallback scale = %g", got)
	}
	// Invalid override falls back to the global scale.
	if got := cfg.scaleOf("bogus"); got != 0.1 {
		t.Fatalf("invalid override used: %g", got)
	}
	// Table1 honors the override.
	tcfg := tinyCfg()
	tcfg.Datasets = []string{"facebook"}
	tcfg.ScaleFor = map[string]float64{"facebook": 0.1}
	rows, err := Table1(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Nodes != 74 {
		t.Fatalf("facebook at 0.1 scale has %d nodes, want 74", rows[0].Nodes)
	}
}

// TestWriteReport runs the full Markdown report at microscopic scale.
func TestWriteReport(t *testing.T) {
	cfg := tinyCfg()
	cfg.Ks = []int{3}
	cfg.SizeCaps = []int{4}
	cfg.Datasets = []string{"facebook"}
	var buf bytes.Buffer
	if err := WriteReport(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# IMC evaluation report",
		"## Table I",
		"## Fig. 4",
		"## Fig. 8",
		"| facebook |",
		"_Generated in",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

// TestRenderRowsPlot checks the ASCII-chart path groups panels and
// series correctly.
func TestRenderRowsPlot(t *testing.T) {
	var buf bytes.Buffer
	rows := []Row{
		{Panel: "p1", X: "k=5", Alg: "UBG", Benefit: 10},
		{Panel: "p1", X: "k=10", Alg: "UBG", Benefit: 20},
		{Panel: "p1", X: "k=5", Alg: "KS", Benefit: 4},
		{Panel: "p1", X: "k=10", Alg: "KS", Benefit: 6},
		{Panel: "p2", X: "k=5", Alg: "MAF", Benefit: 3},
	}
	if err := RenderRowsPlot(&buf, "title", rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"title", "panel p1", "panel p2", "* UBG", "o KS", "* MAF", "k=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot output missing %q:\n%s", want, out)
		}
	}
	// Ratio-only rows fall back to the ratio metric without error.
	buf.Reset()
	if err := RenderRowsPlot(&buf, "r", []Row{{Panel: "p", X: "k=1", Alg: "UBG", Ratio: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.50") {
		t.Fatalf("ratio axis missing:\n%s", buf.String())
	}
}

// TestPaperShapeUBGBeatsKS asserts the headline qualitative result on a
// small instance: UBG's benefit is at least KS's (the paper's worst
// baseline) at every k.
func TestPaperShapeUBGBeatsKS(t *testing.T) {
	cfg := tinyCfg()
	cfg.Scale = 0.1
	cfg.Datasets = []string{"wikivote"}
	cfg.Ks = []int{10}
	rows, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byAlg := map[string]float64{}
	for _, r := range rows {
		byAlg[r.Alg] = r.Benefit
	}
	if byAlg[AlgUBG] < byAlg[AlgKS] {
		t.Fatalf("UBG %g below KS %g", byAlg[AlgUBG], byAlg[AlgKS])
	}
}
