// Package baselines implements the three heuristic comparators from the
// paper's evaluation (Section VI-A): HBC (high beneficial connection),
// KS (knapsack over communities) and IM (classic influence
// maximization, backed by internal/ris).
package baselines

import (
	"context"
	"fmt"
	"sort"

	"imc/internal/community"
	"imc/internal/graph"
	"imc/internal/ris"
)

// HBC selects the k nodes with the highest beneficial connection
// B(u) = Σ_{v ∈ N_out(u)} w(u,v) · b_C(v) / h_C(v), crediting each
// out-neighbor's community benefit scaled by how hard that community is
// to activate.
func HBC(g *graph.Graph, part *community.Partition, k int) ([]graph.NodeID, error) {
	if err := check(g, part, k); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	score := make([]float64, n)
	for u := graph.NodeID(0); int(u) < n; u++ {
		tos, ws := g.OutNeighbors(u)
		s := 0.0
		for i, v := range tos {
			ci := part.Of(v)
			if ci == community.Unassigned {
				continue
			}
			c := part.Community(int(ci))
			s += ws[i] * c.Benefit / float64(c.Threshold)
		}
		// A node's own membership also counts toward activating its
		// community; credit it like a weight-1 self connection.
		if ci := part.Of(u); ci != community.Unassigned {
			c := part.Community(int(ci))
			s += c.Benefit / float64(c.Threshold)
		}
		score[u] = s
	}
	return topK(score, k), nil
}

// KS solves the community-selection knapsack exactly by dynamic
// programming — thresholds are costs, benefits are values, k is the
// budget — then seeds each selected community with its h_i highest
// out-degree members. KS deliberately ignores the diffusion process,
// which is why the paper reports it trailing every other method.
func KS(g *graph.Graph, part *community.Partition, k int) ([]graph.NodeID, error) {
	if err := check(g, part, k); err != nil {
		return nil, err
	}
	r := part.NumCommunities()
	// dp[w] = best value with budget w; choice tracking for recovery.
	dp := make([]float64, k+1)
	take := make([][]bool, r)
	for i := 0; i < r; i++ {
		take[i] = make([]bool, k+1)
		c := part.Community(i)
		cost := c.Threshold
		if cost > k {
			continue
		}
		for w := k; w >= cost; w-- {
			if cand := dp[w-cost] + c.Benefit; cand > dp[w] {
				dp[w] = cand
				take[i][w] = true
			}
		}
	}
	// Recover the chosen communities.
	var chosen []int
	w := k
	for i := r - 1; i >= 0; i-- {
		if w >= 0 && take[i][w] {
			chosen = append(chosen, i)
			w -= part.Community(i).Threshold
		}
	}
	seeds := make([]graph.NodeID, 0, k)
	seen := make(map[graph.NodeID]struct{}, k)
	for _, ci := range chosen {
		c := part.Community(ci)
		members := append([]graph.NodeID(nil), c.Members...)
		sort.Slice(members, func(a, b int) bool {
			da, db := g.OutDegree(members[a]), g.OutDegree(members[b])
			if da != db {
				return da > db
			}
			return members[a] < members[b]
		})
		for _, m := range members[:c.Threshold] {
			seeds = append(seeds, m)
			seen[m] = struct{}{}
		}
	}
	// Spend leftover budget on globally high-out-degree nodes.
	if len(seeds) < k {
		score := make([]float64, g.NumNodes())
		for u := range score {
			score[u] = float64(g.OutDegree(graph.NodeID(u)))
		}
		for _, v := range topK(score, k) {
			if len(seeds) == k {
				break
			}
			if _, dup := seen[v]; !dup {
				seeds = append(seeds, v)
				seen[v] = struct{}{}
			}
		}
	}
	return seeds, nil
}

// IM runs classic influence maximization (internal/ris) and returns its
// seed set, ignoring community structure entirely.
func IM(g *graph.Graph, part *community.Partition, k int, opts ris.Options) ([]graph.NodeID, error) {
	return IMCtx(context.Background(), g, part, k, opts)
}

// IMCtx is IM with cooperative cancellation threaded into the RIS
// solver.
//
//imc:longrun
func IMCtx(ctx context.Context, g *graph.Graph, part *community.Partition, k int, opts ris.Options) ([]graph.NodeID, error) {
	if err := check(g, part, k); err != nil {
		return nil, err
	}
	opts.K = k
	sol, err := ris.SolveCtx(ctx, g, opts)
	if err != nil {
		return nil, fmt.Errorf("baselines: IM: %w", err)
	}
	return sol.Seeds, nil
}

// HighDegree returns the k nodes of largest out-degree — the classic
// degree heuristic, exposed for ablations.
func HighDegree(g *graph.Graph, k int) []graph.NodeID {
	score := make([]float64, g.NumNodes())
	for u := range score {
		score[u] = float64(g.OutDegree(graph.NodeID(u)))
	}
	return topK(score, k)
}

func check(g *graph.Graph, part *community.Partition, k int) error {
	if k < 1 {
		return fmt.Errorf("baselines: k=%d must be ≥ 1", k)
	}
	if k > g.NumNodes() {
		return fmt.Errorf("baselines: k=%d exceeds node count %d", k, g.NumNodes())
	}
	if g.NumNodes() != part.NumNodes() {
		return fmt.Errorf("baselines: graph has %d nodes but partition covers %d", g.NumNodes(), part.NumNodes())
	}
	return nil
}

// topK returns the indices of the k largest scores (ties by smaller
// index).
func topK(score []float64, k int) []graph.NodeID {
	idx := make([]graph.NodeID, len(score))
	for i := range idx {
		idx[i] = graph.NodeID(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := score[idx[a]], score[idx[b]]
		if sa > sb {
			return true
		}
		if sa < sb {
			return false
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return append([]graph.NodeID(nil), idx[:k]...)
}
