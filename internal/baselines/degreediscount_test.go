package baselines

import (
	"testing"

	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
)

func TestDegreeDiscountValidation(t *testing.T) {
	g, err := gen.PathGraph(5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DegreeDiscount(g, 0, 0.01); err == nil {
		t.Fatal("want k error")
	}
	if _, err := DegreeDiscount(g, 10, 0.01); err == nil {
		t.Fatal("want k > n error")
	}
}

func TestDegreeDiscountPicksHubFirst(t *testing.T) {
	// Star: node 0 points at everyone.
	b := graph.NewBuilder(6)
	for v := int32(1); v < 6; v++ {
		b.AddEdge(0, v, 0.5)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := DegreeDiscount(g, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("first seed = %d, want hub 0", seeds[0])
	}
}

func TestDegreeDiscountDiscountsNeighbors(t *testing.T) {
	// Two hubs sharing all their neighbors vs one independent hub with
	// slightly fewer neighbors: after picking hub A, hub B (overlapping)
	// must be discounted below the independent hub C.
	b := graph.NewBuilder(12)
	shared := []int32{3, 4, 5, 6, 7}
	for _, v := range shared {
		b.AddEdge(0, v, 0.5) // hub A, degree 5
		b.AddEdge(1, v, 0.5) // hub B, degree 5, fully overlapping
	}
	// A also points at B so B gets discounted when A is chosen.
	b.AddEdge(0, 1, 0.5)
	for _, v := range []int32{8, 9, 10, 11} {
		b.AddEdge(2, v, 0.5) // hub C, degree 4, independent
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := DegreeDiscount(g, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 0 {
		t.Fatalf("first seed = %d, want hub A (degree 6)", seeds[0])
	}
	if seeds[1] != 2 {
		t.Fatalf("second seed = %d, want independent hub C over discounted B", seeds[1])
	}
}

func TestDegreeDiscountDistinctSeeds(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := DegreeDiscount(g, 20, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.NodeID]bool)
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if len(seeds) != 20 {
		t.Fatalf("got %d seeds", len(seeds))
	}
}

func TestDegreeDiscountCompetitiveSpread(t *testing.T) {
	g, err := gen.BarabasiAlbert(500, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	dd, err := DegreeDiscount(g, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	opt := diffusion.MCOptions{Iterations: 3000, Seed: 13}
	ddSpread, err := diffusion.EstimateSpread(g, dd, opt)
	if err != nil {
		t.Fatal(err)
	}
	tail := []graph.NodeID{490, 491, 492, 493, 494, 495, 496, 497, 498, 499}
	tailSpread, err := diffusion.EstimateSpread(g, tail, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ddSpread <= tailSpread {
		t.Fatalf("degree-discount spread %g not above arbitrary tail %g", ddSpread, tailSpread)
	}
}

func TestDegreeDiscountDefaultP(t *testing.T) {
	g, err := gen.BarabasiAlbert(50, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range p falls back to the default without error.
	if _, err := DegreeDiscount(g, 5, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := DegreeDiscount(g, 5, 2); err != nil {
		t.Fatal(err)
	}
}
