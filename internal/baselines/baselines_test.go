package baselines

import (
	"testing"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/ris"
)

func instance(t *testing.T) (*graph.Graph, *community.Partition) {
	t.Helper()
	g, err := gen.BarabasiAlbert(100, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	part, err := community.Random(100, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

func distinct(t *testing.T, name string, seeds []graph.NodeID, k int) {
	t.Helper()
	if len(seeds) != k {
		t.Fatalf("%s returned %d seeds, want %d", name, len(seeds), k)
	}
	seen := make(map[graph.NodeID]bool)
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("%s returned duplicate seed %d", name, s)
		}
		seen[s] = true
	}
}

func TestHBC(t *testing.T) {
	g, part := instance(t)
	seeds, err := HBC(g, part, 5)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, "HBC", seeds, 5)
}

func TestHBCPrefersBeneficialNeighbors(t *testing.T) {
	// Node 0 points at a huge-benefit community; node 3 points nowhere.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(3, 4, 0.0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(6, [][]graph.NodeID{{1, 2}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := part.SetBenefit(0, 100); err != nil {
		t.Fatal(err)
	}
	seeds, err := HBC(g, part, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Members of the benefit-100 community (1 or 2) or node 0 pointing
	// into it must win over anything near the benefit-2 community.
	if s := seeds[0]; s != 0 && s != 1 && s != 2 {
		t.Fatalf("HBC picked %d, want a node attached to the rich community", s)
	}
}

func TestKSRespectsBudgetAndPicksValuable(t *testing.T) {
	g, part := instance(t)
	k := 6
	seeds, err := KS(g, part, k)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, "KS", seeds, k)
}

func TestKSIsOptimalKnapsack(t *testing.T) {
	// Communities with thresholds 2,2,3 and benefits 3,4,6; budget 5.
	// Best value = 4+6 = 10 (cost 5); DP must seed those two communities.
	b := graph.NewBuilder(7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(7, [][]graph.NodeID{{0, 1}, {2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	for i, th := range []int{2, 2, 3} {
		if err := part.SetThreshold(i, th); err != nil {
			t.Fatal(err)
		}
	}
	for i, bv := range []float64{3, 4, 6} {
		if err := part.SetBenefit(i, bv); err != nil {
			t.Fatal(err)
		}
	}
	seeds, err := KS(g, part, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[graph.NodeID]bool)
	for _, s := range seeds {
		got[s] = true
	}
	for _, m := range []graph.NodeID{2, 3, 4, 5, 6} {
		if !got[m] {
			t.Fatalf("KS seeds %v missing member %d of the optimal pack", seeds, m)
		}
	}
}

func TestIMBaseline(t *testing.T) {
	g, part := instance(t)
	seeds, err := IM(g, part, 4, ris.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, "IM", seeds, 4)
}

func TestHighDegree(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(2, 0, 1)
	b.AddEdge(2, 1, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(0, 1, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seeds := HighDegree(g, 2)
	if seeds[0] != 2 {
		t.Fatalf("HighDegree first pick = %d, want hub 2", seeds[0])
	}
	if seeds[1] != 0 {
		t.Fatalf("HighDegree second pick = %d, want 0", seeds[1])
	}
}

func TestValidation(t *testing.T) {
	g, part := instance(t)
	if _, err := HBC(g, part, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, err := KS(g, part, 1000); err == nil {
		t.Fatal("want k > n error")
	}
	small, err := community.Random(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HBC(g, small, 3); err == nil {
		t.Fatal("want mismatch error")
	}
}
