package baselines

import (
	"container/heap"
	"fmt"

	"imc/internal/graph"
)

// DegreeDiscount implements the classic degree-discount heuristic of
// Chen, Wang & Yang (KDD 2009) for the IC model with propagation
// probability p: each time a node's neighbor is seeded, the node's
// effective degree is discounted by dd_v = d_v − 2t_v − (d_v − t_v)·t_v·p,
// where t_v counts already-seeded neighbors. A cheap, strong spread
// heuristic used here as an extra ablation comparator.
func DegreeDiscount(g *graph.Graph, k int, p float64) ([]graph.NodeID, error) {
	n := g.NumNodes()
	if k < 1 || k > n {
		return nil, fmt.Errorf("baselines: k=%d out of [1, %d]", k, n)
	}
	if p <= 0 || p > 1 {
		p = 0.01
	}
	deg := make([]int, n)
	tSel := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(graph.NodeID(v))
	}
	h := ddHeap{items: make([]ddItem, n), pos: make([]int, n)}
	for v := 0; v < n; v++ {
		h.items[v] = ddItem{node: graph.NodeID(v), score: float64(deg[v])}
		h.pos[v] = v
	}
	heap.Init(&h)

	chosen := make([]bool, n)
	seeds := make([]graph.NodeID, 0, k)
	for len(seeds) < k && h.Len() > 0 {
		top := heap.Pop(&h).(ddItem)
		u := top.node
		chosen[u] = true
		seeds = append(seeds, u)
		// Discount every not-yet-chosen out-neighbor.
		tos, _ := g.OutNeighbors(u)
		for _, v := range tos {
			if chosen[v] {
				continue
			}
			tSel[v]++
			d, tv := float64(deg[v]), float64(tSel[v])
			score := d - 2*tv - (d-tv)*tv*p
			h.update(v, score)
		}
	}
	return seeds, nil
}

// ddItem is one heap entry of the degree-discount priority queue.
type ddItem struct {
	node  graph.NodeID
	score float64
}

// ddHeap is a max-heap over discounted degrees with position tracking
// so neighbor updates are O(log n).
type ddHeap struct {
	items []ddItem
	pos   []int // node -> index in items, -1 if popped
}

func (h ddHeap) Len() int { return len(h.items) }
func (h ddHeap) Less(i, j int) bool {
	si, sj := h.items[i].score, h.items[j].score
	if si > sj {
		return true
	}
	if si < sj {
		return false
	}
	return h.items[i].node < h.items[j].node
}
func (h ddHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].node] = i
	h.pos[h.items[j].node] = j
}
func (h *ddHeap) Push(x any) {
	item := x.(ddItem)
	h.pos[item.node] = len(h.items)
	h.items = append(h.items, item)
}
func (h *ddHeap) Pop() any {
	old := h.items
	item := old[len(old)-1]
	h.items = old[:len(old)-1]
	h.pos[item.node] = -1
	return item
}

// update adjusts a node's score in place (no-op if already popped).
func (h *ddHeap) update(v graph.NodeID, score float64) {
	i := h.pos[v]
	if i < 0 {
		return
	}
	h.items[i].score = score
	heap.Fix(h, i)
}
