package maxr

import (
	"context"

	"imc/internal/graph"
	"imc/internal/ric"
)

// LocalSearch refines a seed set by 1-swap hill climbing on ĉ_R:
// repeatedly replace one seed with one non-seed candidate when the
// swap strictly increases the number of influenced samples, until no
// improving swap exists or maxRounds passes complete.
//
// Greedy algorithms on non-submodular objectives can end in states a
// single exchange escapes (the paper's Fig. 2 phenomenon at set scale);
// the refiner recovers part of that loss at modest cost. The result
// never scores below the input. maxRounds ≤ 0 defaults to 2·k.
func LocalSearch(pool *ric.Pool, seeds []graph.NodeID, maxRounds int) ([]graph.NodeID, int) {
	current := append([]graph.NodeID(nil), seeds...)
	if len(current) == 0 || pool.NumSamples() == 0 {
		return current, pool.CoverageCount(current)
	}
	if maxRounds <= 0 {
		maxRounds = 2 * len(current)
	}
	cands := candidates(pool)
	inSet := make(map[graph.NodeID]int, len(current))
	for i, s := range current {
		inSet[s] = i
	}
	bestCov := pool.CoverageCount(current)
	for round := 0; round < maxRounds; round++ {
		improved := false
		for i := 0; i < len(current) && !improved; i++ {
			// Build the state without seed i once, then try candidates.
			st := pool.NewState()
			for j, s := range current {
				if j != i {
					st.Add(s)
				}
			}
			for _, v := range cands {
				if _, dup := inSet[v]; dup {
					continue
				}
				if gain := coverageGain(pool, st, v); st.InfluencedCount()+gain > bestCov {
					delete(inSet, current[i])
					current[i] = v
					inSet[v] = i
					bestCov = st.InfluencedCount() + gain
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return current, bestCov
}

// Refined wraps any Solver with a LocalSearch post-pass.
type Refined struct {
	// Base is the solver whose output is refined.
	Base Solver
	// MaxRounds bounds the hill climb (0 = 2·k).
	MaxRounds int
}

var _ CtxSolver = Refined{}

// Name implements Solver.
func (r Refined) Name() string { return r.Base.Name() + "+LS" }

// Guarantee implements Solver: local search never lowers coverage, so
// the base guarantee carries over.
func (r Refined) Guarantee(pool *ric.Pool, k int) float64 {
	return r.Base.Guarantee(pool, k)
}

// Solve implements Solver.
func (r Refined) Solve(pool *ric.Pool, k int) (Result, error) {
	return r.SolveCtx(context.Background(), pool, k)
}

// SolveCtx implements CtxSolver: the base solve is ctx-aware (via
// SolveWithContext) and the hill climb is gated by one poll per outer
// pass boundary — the refinement never runs on a cancelled ctx.
//
//imc:longrun
func (r Refined) SolveCtx(ctx context.Context, pool *ric.Pool, k int) (Result, error) {
	res, err := SolveWithContext(ctx, r.Base, pool, k)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	seeds, _ := LocalSearch(pool, res.Seeds, r.MaxRounds)
	return finalize(pool, seeds), nil
}
