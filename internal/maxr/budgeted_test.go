package maxr

import (
	"testing"

	"imc/internal/graph"
)

func TestSolveBudgetedUniformMatchesCardinality(t *testing.T) {
	pool := pairPool(t, 2000)
	res, err := SolveBudgeted(pool, UniformCost, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Budget 2 at unit cost ≡ k=2: must find the benefit-10 pair {0,1}.
	got := seedSet(res.Seeds)
	if !got[0] || !got[1] {
		t.Fatalf("budgeted picked %v, want {0,1}", res.Seeds)
	}
	if TotalCost(res.Seeds, UniformCost) > 2 {
		t.Fatal("budget exceeded")
	}
}

func TestSolveBudgetedRespectsCosts(t *testing.T) {
	pool := pairPool(t, 2000)
	// Make the rich pair unaffordable: nodes 0 and 1 cost 5 each.
	cost := func(u graph.NodeID) float64 {
		if u <= 1 {
			return 5
		}
		return 1
	}
	res, err := SolveBudgeted(pool, cost, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Seeds {
		if s <= 1 {
			t.Fatalf("unaffordable node %d selected", s)
		}
	}
	// With budget 2 the poor pair {2,3} is optimal.
	got := seedSet(res.Seeds)
	if !got[2] || !got[3] {
		t.Fatalf("budgeted picked %v, want {2,3}", res.Seeds)
	}
}

func TestSolveBudgetedBestSingleGuard(t *testing.T) {
	// Rate greedy alone would prefer two cheap nodes covering nothing
	// over one expensive node covering everything. The single guard
	// must win here: on the pair pool, node 0 alone covers nothing, so
	// just check the API path with a tight budget.
	pool := pairPool(t, 500)
	res, err := SolveBudgeted(pool, UniformCost, 1)
	if err != nil {
		t.Fatal(err)
	}
	if TotalCost(res.Seeds, UniformCost) > 1 {
		t.Fatal("budget exceeded")
	}
}

func TestSolveBudgetedValidation(t *testing.T) {
	pool := pairPool(t, 100)
	if _, err := SolveBudgeted(pool, UniformCost, 0); err == nil {
		t.Fatal("want budget error")
	}
	// Nothing affordable: empty but valid result.
	res, err := SolveBudgeted(pool, func(graph.NodeID) float64 { return 100 }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 0 {
		t.Fatalf("unaffordable instance returned seeds %v", res.Seeds)
	}
}

func TestSolveBudgetedMonotoneInBudget(t *testing.T) {
	pool := randomPool(t, 202)
	prev := -1
	for _, budget := range []float64{1, 2, 4, 8} {
		res, err := SolveBudgeted(pool, UniformCost, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < prev {
			t.Fatalf("coverage decreased from %d to %d at budget %g", prev, res.Coverage, budget)
		}
		prev = res.Coverage
	}
}

func TestDegreeCost(t *testing.T) {
	pool := randomPool(t, 203)
	cost := DegreeCost(pool.Graph(), 0.5)
	res, err := SolveBudgeted(pool, cost, 6)
	if err != nil {
		t.Fatal(err)
	}
	if TotalCost(res.Seeds, cost) > 6+1e-9 {
		t.Fatalf("degree-cost budget exceeded: %g", TotalCost(res.Seeds, cost))
	}
}
