package maxr

import (
	"testing"

	"imc/internal/graph"
)

func TestLocalSearchNeverRegresses(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		pool := randomPool(t, 300+seed)
		res, err := MAF{}.Solve(pool, 4)
		if err != nil {
			t.Fatal(err)
		}
		refined, cov := LocalSearch(pool, res.Seeds, 0)
		if cov < res.Coverage {
			t.Fatalf("seed %d: local search regressed %d -> %d", seed, res.Coverage, cov)
		}
		if cov != pool.CoverageCount(refined) {
			t.Fatalf("reported coverage %d inconsistent with %d", cov, pool.CoverageCount(refined))
		}
		if len(refined) != len(res.Seeds) {
			t.Fatalf("swap changed set size: %d -> %d", len(res.Seeds), len(refined))
		}
		seen := map[graph.NodeID]bool{}
		for _, v := range refined {
			if seen[v] {
				t.Fatalf("duplicate seed after refinement: %v", refined)
			}
			seen[v] = true
		}
	}
}

func TestLocalSearchEscapesBadStart(t *testing.T) {
	// Start from deliberately useless seeds on the isolated-pairs pool:
	// the optimal 2-set {0,1} is one swap-pair away.
	pool := pairPool(t, 1000)
	start := []graph.NodeID{0, 2} // covers neither community fully
	if pool.CoverageCount(start) != 0 {
		t.Fatal("start unexpectedly covers something")
	}
	refined, cov := LocalSearch(pool, start, 0)
	if cov == 0 {
		t.Fatalf("local search failed to escape zero coverage: %v", refined)
	}
	got := seedSet(refined)
	if !(got[0] && got[1]) && !(got[2] && got[3]) {
		t.Fatalf("refined set %v is not a community pair", refined)
	}
}

func TestLocalSearchEmptyInput(t *testing.T) {
	pool := pairPool(t, 100)
	refined, cov := LocalSearch(pool, nil, 0)
	if len(refined) != 0 || cov != 0 {
		t.Fatalf("empty input mangled: %v %d", refined, cov)
	}
}

func TestRefinedSolverWrapper(t *testing.T) {
	pool := randomPool(t, 404)
	base, err := MAF{}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Refined{Base: MAF{}}
	if wrapped.Name() != "MAF+LS" {
		t.Fatalf("name %q", wrapped.Name())
	}
	res, err := wrapped.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < base.Coverage {
		t.Fatalf("refined %d below base %d", res.Coverage, base.Coverage)
	}
	if g := wrapped.Guarantee(pool, 4); g != (MAF{}).Guarantee(pool, 4) {
		t.Fatalf("guarantee changed: %g", g)
	}
}
