//go:build amd64

package maxr

import "unsafe"

// Compile-time layout pins (gc/amd64): a constant index into a
// one-element array compiles only when the expression is zero, so a
// size-changing edit to these structs fails the build here instead of
// silently regressing the CELF queue or the parallel root search.
var (
	// celfItem is //imc:compact: gain + node + round in 16 bytes, four
	// heap items per cache line (was 24 bytes before round narrowed to
	// int32).
	_ = [1]struct{}{}[unsafe.Sizeof(celfItem{})-16]

	// rootResult is //imc:padded to one 64-byte line: each parallel
	// root worker owns one slot of a shared results slice.
	_ = [1]struct{}{}[unsafe.Sizeof(rootResult{})-64]
)
