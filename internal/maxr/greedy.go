package maxr

import (
	"container/heap"
	"context"

	"imc/internal/graph"
	"imc/internal/ric"
)

// coverageGain returns the increase in influenced-sample count if v is
// added to the seed set tracked by st.
func coverageGain(pool *ric.Pool, st *ric.State, v graph.NodeID) int {
	gain := 0
	for _, e := range pool.Entries(v) {
		h := pool.Sample(int(e.Sample)).Threshold
		cur := st.CoverCount(e.Sample)
		if cur >= h {
			continue
		}
		var add int32
		if base := st.Covered(e.Sample); base == nil {
			add = int32(e.Bits.OnesCount())
		} else {
			add = int32(e.Bits.NewBitsOver(base))
		}
		if cur+add >= h {
			gain++
		}
	}
	return gain
}

// fractionalGain returns the increase in Σ min(|I_g|/h_g, 1) if v is
// added to the seed set tracked by st — the marginal of ν_R up to the
// b/|R| scale.
func fractionalGain(pool *ric.Pool, st *ric.State, v graph.NodeID) float64 {
	gain := 0.0
	for _, e := range pool.Entries(v) {
		h := pool.Sample(int(e.Sample)).Threshold
		cur := st.CoverCount(e.Sample)
		if cur >= h {
			continue
		}
		var add int32
		if base := st.Covered(e.Sample); base == nil {
			add = int32(e.Bits.OnesCount())
		} else {
			add = int32(e.Bits.NewBitsOver(base))
		}
		after := cur + add
		if after > h {
			after = h
		}
		gain += float64(after-cur) / float64(h)
	}
	return gain
}

// tieBreakGain scores a candidate when ĉ_R marginals tie (typically at
// zero, when no single node crosses any threshold): fractional member
// coverage weighted toward samples that are already partially covered.
// The (1 + cur/h) factor makes successive picks finish communities
// they started instead of scattering — the concentration that the
// non-submodular objective rewards but that the plain marginal cannot
// see.
func tieBreakGain(pool *ric.Pool, st *ric.State, v graph.NodeID) float64 {
	gain := 0.0
	for _, e := range pool.Entries(v) {
		h := pool.Sample(int(e.Sample)).Threshold
		cur := st.CoverCount(e.Sample)
		if cur >= h {
			continue
		}
		var add int32
		if base := st.Covered(e.Sample); base == nil {
			add = int32(e.Bits.OnesCount())
		} else {
			add = int32(e.Bits.NewBitsOver(base))
		}
		after := cur + add
		if after > h {
			after = h
		}
		gain += float64(after-cur) / float64(h) * (1 + float64(cur)/float64(h))
	}
	return gain
}

// GreedyCHat runs plain greedy directly on ĉ_R. Because ĉ_R is
// non-submodular, marginals are re-evaluated for every candidate in
// every round (no lazy evaluation is sound here).
//
// Ties in the ĉ_R marginal — in particular the all-zero rounds that
// occur whenever no single node can push any sample across its
// threshold — are broken by tieBreakGain. Without the tie-break, plain
// greedy degenerates to arbitrary picks exactly in the non-submodular
// regime the paper highlights; with it, the early picks build toward
// thresholds and later rounds recover the coverage signal.
func GreedyCHat(pool *ric.Pool, k int) ([]graph.NodeID, error) {
	return GreedyCHatCtx(context.Background(), pool, k)
}

// GreedyCHatCtx is GreedyCHat with cooperative cancellation, polled
// every ctxPollBatch marginal evaluations.
//
//imc:longrun
func GreedyCHatCtx(ctx context.Context, pool *ric.Pool, k int) ([]graph.NodeID, error) {
	if err := validate(pool, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cands := candidates(pool)
	st := pool.NewState()
	seeds := make([]graph.NodeID, 0, k)
	used := make(map[graph.NodeID]struct{}, k)
	evals := 0
	for len(seeds) < k {
		best := graph.NodeID(-1)
		bestGain := -1
		bestFrac := -1.0
		for _, v := range cands {
			if evals&(ctxPollBatch-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			evals++
			if _, ok := used[v]; ok {
				continue
			}
			// Candidates are sorted by touch count, and a node's
			// coverage gain can never exceed the number of samples it
			// touches — once that bound drops below the incumbent,
			// nothing later can win (equal-gain ties still require
			// touch ≥ gain, so they are never pruned). This exact
			// prune is what keeps the non-submodular greedy usable on
			// large pools.
			if pool.TouchCount(v) < bestGain {
				break
			}
			g := coverageGain(pool, st, v)
			if g < bestGain {
				continue
			}
			if g > bestGain {
				bestGain = g
				bestFrac = tieBreakGain(pool, st, v)
				best = v
				continue
			}
			if f := tieBreakGain(pool, st, v); f > bestFrac {
				bestFrac = f
				best = v
			}
		}
		if best < 0 {
			break
		}
		st.Add(best)
		seeds = append(seeds, best)
		used[best] = struct{}{}
	}
	return padSeeds(pool, seeds, k), nil
}

// celfItem is one lazy-greedy heap entry.
type celfItem struct {
	node  graph.NodeID
	gain  float64
	round int // seed-set size at which gain was computed
}

type celfHeap []celfItem

func (h celfHeap) Len() int      { return len(h) }
func (h celfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain > h[j].gain {
		return true
	}
	if h[i].gain < h[j].gain {
		return false
	}
	return h[i].node < h[j].node
}
func (h *celfHeap) Push(x any) { *h = append(*h, x.(celfItem)) }
func (h *celfHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// GreedyNu runs CELF lazy greedy on the submodular upper bound ν_R
// (Lemma 3 proves submodularity, so stale heap gains are valid upper
// bounds and lazy evaluation is exact).
func GreedyNu(pool *ric.Pool, k int) ([]graph.NodeID, error) {
	return GreedyNuCtx(context.Background(), pool, k)
}

// GreedyNuCtx is GreedyNu with cooperative cancellation, polled every
// ctxPollBatch CELF pops.
//
//imc:longrun
func GreedyNuCtx(ctx context.Context, pool *ric.Pool, k int) ([]graph.NodeID, error) {
	if err := validate(pool, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cands := candidates(pool)
	st := pool.NewState()
	h := make(celfHeap, 0, len(cands))
	for _, v := range cands {
		h = append(h, celfItem{node: v, gain: fractionalGain(pool, st, v), round: 0})
	}
	heap.Init(&h)
	seeds := make([]graph.NodeID, 0, k)
	pops := 0
	for len(seeds) < k && h.Len() > 0 {
		if pops&(ctxPollBatch-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pops++
		top := heap.Pop(&h).(celfItem)
		if top.round == len(seeds) {
			if top.gain <= 0 {
				break
			}
			st.Add(top.node)
			seeds = append(seeds, top.node)
			continue
		}
		top.gain = fractionalGain(pool, st, top.node)
		top.round = len(seeds)
		heap.Push(&h, top)
	}
	return padSeeds(pool, seeds, k), nil
}
