package maxr

import (
	"context"

	"imc/internal/graph"
	"imc/internal/ric"
)

// coverageGain returns the increase in influenced-sample count if v is
// added to the seed set tracked by st.
//
//imc:hotpath
func coverageGain(pool *ric.Pool, st *ric.State, v graph.NodeID) int {
	gain := 0
	for _, e := range pool.Entries(v) {
		h := pool.Sample(int(e.Sample)).Threshold
		cur := st.CoverCount(e.Sample)
		if cur >= h {
			continue
		}
		var add int32
		if base := st.Covered(e.Sample); base == nil {
			add = int32(e.Bits.OnesCount())
		} else {
			add = int32(e.Bits.NewBitsOver(base))
		}
		if cur+add >= h {
			gain++
		}
	}
	return gain
}

// fractionalGain returns the increase in Σ min(|I_g|/h_g, 1) if v is
// added to the seed set tracked by st — the marginal of ν_R up to the
// b/|R| scale.
//
//imc:hotpath
func fractionalGain(pool *ric.Pool, st *ric.State, v graph.NodeID) float64 {
	gain := 0.0
	for _, e := range pool.Entries(v) {
		h := pool.Sample(int(e.Sample)).Threshold
		cur := st.CoverCount(e.Sample)
		if cur >= h {
			continue
		}
		var add int32
		if base := st.Covered(e.Sample); base == nil {
			add = int32(e.Bits.OnesCount())
		} else {
			add = int32(e.Bits.NewBitsOver(base))
		}
		after := cur + add
		if after > h {
			after = h
		}
		gain += float64(after-cur) / float64(h)
	}
	return gain
}

// tieBreakGain scores a candidate when ĉ_R marginals tie (typically at
// zero, when no single node crosses any threshold): fractional member
// coverage weighted toward samples that are already partially covered.
// The (1 + cur/h) factor makes successive picks finish communities
// they started instead of scattering — the concentration that the
// non-submodular objective rewards but that the plain marginal cannot
// see.
//
//imc:hotpath
func tieBreakGain(pool *ric.Pool, st *ric.State, v graph.NodeID) float64 {
	gain := 0.0
	for _, e := range pool.Entries(v) {
		h := pool.Sample(int(e.Sample)).Threshold
		cur := st.CoverCount(e.Sample)
		if cur >= h {
			continue
		}
		var add int32
		if base := st.Covered(e.Sample); base == nil {
			add = int32(e.Bits.OnesCount())
		} else {
			add = int32(e.Bits.NewBitsOver(base))
		}
		after := cur + add
		if after > h {
			after = h
		}
		gain += float64(after-cur) / float64(h) * (1 + float64(cur)/float64(h))
	}
	return gain
}

// GreedyCHat runs plain greedy directly on ĉ_R. Because ĉ_R is
// non-submodular, marginals are re-evaluated for every candidate in
// every round (no lazy evaluation is sound here).
//
// Ties in the ĉ_R marginal — in particular the all-zero rounds that
// occur whenever no single node can push any sample across its
// threshold — are broken by tieBreakGain. Without the tie-break, plain
// greedy degenerates to arbitrary picks exactly in the non-submodular
// regime the paper highlights; with it, the early picks build toward
// thresholds and later rounds recover the coverage signal.
func GreedyCHat(pool *ric.Pool, k int) ([]graph.NodeID, error) {
	return GreedyCHatCtx(context.Background(), pool, k)
}

// GreedyCHatCtx is GreedyCHat with cooperative cancellation, polled
// every ctxPollBatch marginal evaluations.
//
//imc:hotpath
//imc:longrun
func GreedyCHatCtx(ctx context.Context, pool *ric.Pool, k int) ([]graph.NodeID, error) {
	if err := validate(pool, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cands := candidates(pool)
	st := pool.NewState()
	seeds := make([]graph.NodeID, 0, k)
	// A flat membership slice, not a map: the candidate scan reads it
	// once per node per round, and an indexed load stays cheap where a
	// map lookup hashes.
	used := make([]bool, pool.Graph().NumNodes())
	evals := 0
	for len(seeds) < k {
		best := graph.NodeID(-1)
		bestGain := -1
		bestFrac := -1.0
		for _, v := range cands {
			if evals&(ctxPollBatch-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			evals++
			if used[v] {
				continue
			}
			// Candidates are sorted by touch count, and a node's
			// coverage gain can never exceed the number of samples it
			// touches — once that bound drops below the incumbent,
			// nothing later can win (equal-gain ties still require
			// touch ≥ gain, so they are never pruned). This exact
			// prune is what keeps the non-submodular greedy usable on
			// large pools.
			if pool.TouchCount(v) < bestGain {
				break
			}
			g := coverageGain(pool, st, v)
			if g < bestGain {
				continue
			}
			if g > bestGain {
				bestGain = g
				bestFrac = tieBreakGain(pool, st, v)
				best = v
				continue
			}
			if f := tieBreakGain(pool, st, v); f > bestFrac {
				bestFrac = f
				best = v
			}
		}
		if best < 0 {
			break
		}
		st.Add(best)
		seeds = append(seeds, best)
		used[best] = true
	}
	return padSeeds(pool, seeds, k), nil
}

// celfItem is one lazy-greedy heap entry. The heap holds one per
// candidate node, so the layout is pinned waste-free: round is an
// int32 — seed-set sizes fit comfortably — so it packs into one word
// with the int32 node ID (16 bytes per entry instead of 24).
//
//imc:compact
type celfItem struct {
	gain  float64
	node  graph.NodeID
	round int32 // seed-set size at which gain was computed
}

// celfHeap is a concrete binary min-position heap over celfItems,
// ordered by (gain desc, node asc) — a total order, so the pop sequence
// is fully determined by the contents. It replaces container/heap: the
// interface indirection boxed every item through `any` and dispatched
// Less/Swap dynamically on the hottest edge of the lazy greedy, where a
// concrete sift inlines. The sift algorithms mirror container/heap's
// exactly, so the pop order (and therefore every solver output) is
// unchanged.
type celfHeap []celfItem

// less is the heap order: higher gain first, node ID breaking ties.
func (h celfHeap) less(i, j int) bool {
	if h[i].gain > h[j].gain {
		return true
	}
	if h[i].gain < h[j].gain {
		return false
	}
	return h[i].node < h[j].node
}

// init establishes the heap invariant over arbitrary contents.
func (h celfHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// push adds an item and restores the invariant.
//
//imc:hotpath
func (h *celfHeap) push(it celfItem) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

// pop removes and returns the top (best) item.
//
//imc:hotpath
func (h *celfHeap) pop() celfItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	top := s[n]
	*h = s[:n]
	(*h).down(0)
	return top
}

func (h celfHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h celfHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// GreedyNu runs CELF lazy greedy on the submodular upper bound ν_R
// (Lemma 3 proves submodularity, so stale heap gains are valid upper
// bounds and lazy evaluation is exact).
func GreedyNu(pool *ric.Pool, k int) ([]graph.NodeID, error) {
	return GreedyNuCtx(context.Background(), pool, k)
}

// GreedyNuCtx is GreedyNu with cooperative cancellation, polled every
// ctxPollBatch CELF pops.
//
//imc:hotpath
//imc:longrun
func GreedyNuCtx(ctx context.Context, pool *ric.Pool, k int) ([]graph.NodeID, error) {
	if err := validate(pool, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cands := candidates(pool)
	st := pool.NewState()
	h := make(celfHeap, 0, len(cands))
	for _, v := range cands {
		h = append(h, celfItem{node: v, gain: fractionalGain(pool, st, v), round: 0})
	}
	h.init()
	seeds := make([]graph.NodeID, 0, k)
	pops := 0
	for len(seeds) < k && len(h) > 0 {
		if pops&(ctxPollBatch-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pops++
		top := h.pop()
		if int(top.round) == len(seeds) {
			if top.gain <= 0 {
				break
			}
			st.Add(top.node)
			seeds = append(seeds, top.node)
			continue
		}
		top.gain = fractionalGain(pool, st, top.node)
		top.round = int32(len(seeds))
		h.push(top)
	}
	return padSeeds(pool, seeds, k), nil
}
