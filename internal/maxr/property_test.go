package maxr

import (
	"math"
	"testing"
	"testing/quick"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/ric"
	"imc/internal/xrand"
)

// propertyPool builds a deterministic small pool for quick-check
// properties; seed varies the topology and thresholds.
func propertyPool(seed uint64, bounded bool) (*ric.Pool, error) {
	g, err := gen.RandomDirected(16, 50, 0.6, seed)
	if err != nil {
		return nil, err
	}
	part, err := community.Random(16, 4, seed+1)
	if err != nil {
		return nil, err
	}
	if bounded {
		part.SetBoundedThresholds(2)
	} else {
		part.SetFractionThresholds(0.5)
	}
	part.SetPopulationBenefits()
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed + 2})
	if err != nil {
		return nil, err
	}
	if err := pool.Generate(300); err != nil {
		return nil, err
	}
	return pool, nil
}

func randomSeedSet(rng *xrand.RNG, n, k int) []graph.NodeID {
	out := make([]graph.NodeID, 0, k)
	for _, v := range rng.SampleK(n, k) {
		out = append(out, graph.NodeID(v))
	}
	return out
}

// Property (Lemma 3): ĉ_R(S) ≤ ν_R(S) for every S, and both are
// monotone under adding a seed.
func TestQuickBoundAndMonotonicity(t *testing.T) {
	f := func(seed uint64, kRaw, extraRaw uint8) bool {
		pool, err := propertyPool(seed%50, seed%2 == 0)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		k := int(kRaw%5) + 1
		seeds := randomSeedSet(rng, 16, k)
		chat, nu := pool.CHat(seeds), pool.NuHat(seeds)
		if chat > nu+1e-9 {
			return false
		}
		extra := graph.NodeID(extraRaw % 16)
		grown := append(append([]graph.NodeID(nil), seeds...), extra)
		return pool.CHat(grown) >= chat-1e-9 && pool.NuHat(grown) >= nu-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ν_R is submodular (Lemma 3's proof): for A ⊆ B and any v,
// marginal(v | A) ≥ marginal(v | B).
func TestQuickNuSubmodular(t *testing.T) {
	f := func(seed uint64, pick [3]uint8) bool {
		pool, err := propertyPool(seed%50, true)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		a := randomSeedSet(rng, 16, 2)
		b := append(append([]graph.NodeID(nil), a...), randomSeedSet(rng, 16, 3)...)
		v := graph.NodeID(pick[0] % 16)
		withA := append(append([]graph.NodeID(nil), a...), v)
		withB := append(append([]graph.NodeID(nil), b...), v)
		margA := pool.NuHat(withA) - pool.NuHat(a)
		margB := pool.NuHat(withB) - pool.NuHat(b)
		return margA >= margB-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: ĉ_R and ν_R are invariant under seed-set permutation and
// duplication.
func TestQuickEvalSetSemantics(t *testing.T) {
	f := func(seed uint64) bool {
		pool, err := propertyPool(seed%50, false)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		seeds := randomSeedSet(rng, 16, 4)
		shuffled := append([]graph.NodeID(nil), seeds...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		duplicated := append(append([]graph.NodeID(nil), seeds...), seeds...)
		base := pool.CHat(seeds)
		// ν sums fractions in touch order, so permutations may differ by
		// float rounding; compare with tolerance.
		nuDiff := math.Abs(pool.NuHat(shuffled) - pool.NuHat(seeds))
		return pool.CHat(shuffled) == base &&
			pool.CHat(duplicated) == base &&
			nuDiff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (Lemma 5): for any seed set S,
// max_{u∈S} |D(S,u)| ≤ #influenced ≤ Σ_{u∈S} |D(S,u)|,
// where D(S,u) is the set of samples u touches that S influences.
func TestQuickLemma5SandwichOnD(t *testing.T) {
	f := func(seed uint64) bool {
		pool, err := propertyPool(seed%50, true)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		seeds := randomSeedSet(rng, 16, 3)

		st := pool.NewState()
		for _, s := range seeds {
			st.Add(s)
		}
		influenced := st.InfluencedCount()

		// |D(S,u)|: samples u touches whose threshold S meets.
		dSize := func(u graph.NodeID) int {
			c := 0
			for _, e := range pool.Entries(u) {
				if st.CoverCount(e.Sample) >= pool.Sample(int(e.Sample)).Threshold {
					c++
				}
			}
			return c
		}
		maxD, sumD := 0, 0
		for _, u := range seeds {
			d := dSize(u)
			sumD += d
			if d > maxD {
				maxD = d
			}
		}
		return maxD <= influenced && influenced <= sumD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every solver returns within-budget, in-range, distinct
// seeds for arbitrary small instances.
func TestQuickSolversWellFormed(t *testing.T) {
	solvers := []Solver{UBG{}, MAF{}, BT{MaxRoots: 6}, MB{BT: BT{MaxRoots: 6}}}
	f := func(seed uint64, kRaw uint8) bool {
		pool, err := propertyPool(seed%30, true)
		if err != nil {
			return false
		}
		k := int(kRaw%6) + 1
		for _, s := range solvers {
			res, err := s.Solve(pool, k)
			if err != nil {
				return false
			}
			if len(res.Seeds) > k {
				return false
			}
			seen := map[graph.NodeID]bool{}
			for _, v := range res.Seeds {
				if v < 0 || int(v) >= 16 || seen[v] {
					return false
				}
				seen[v] = true
			}
			if res.Coverage != pool.CoverageCount(res.Seeds) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
