// Package maxr implements the paper's Section IV: approximation
// algorithms for the MAXR problem — given a pool R of RIC samples and a
// budget k, pick k seed nodes maximizing the number of influenced
// samples (equivalently ĉ_R, which is non-submodular, Lemma 2).
//
// Four solvers are provided, mirroring the paper:
//
//   - UBG  — Upper-Bound Greedy / sandwich approximation (Alg. 2):
//     greedy on the submodular upper bound ν_R plus greedy on ĉ_R,
//     keeping the better seed set under ĉ_R.
//   - MAF  — Most-Appearance-First (Alg. 3): activate the most frequent
//     communities (S1) or the most frequent nodes (S2), whichever
//     influences more samples. Guarantee ⌊k/h⌋/r.
//   - BT   — Bounded-Threshold (Alg. 4): for every candidate root u,
//     reduce the samples u touches to threshold ≤ h−1 and solve the
//     remainder; guarantee (1−1/e)/k^(d−1) for thresholds ≤ d.
//   - MB   — MAF ∨ BT: the combination achieving the
//     Θ(√((1−1/e)/r)) guarantee that is tight to the problem's
//     inapproximability (Theorem 5).
package maxr

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"imc/internal/graph"
	"imc/internal/ric"
)

// ErrEmptyPool is returned when solving against a pool with no samples.
var ErrEmptyPool = errors.New("maxr: pool has no samples")

// ctxPollBatch is how many candidate evaluations (greedy marginals, CELF
// pops, BT roots) a solver loop runs between cooperative ctx.Err()
// polls. Batch-boundary polling keeps the check off the hot path and —
// because it never touches solver state — leaves completed runs
// byte-identical to the ctx-free path.
const ctxPollBatch = 1024

// Result is a solved MAXR instance.
type Result struct {
	// Seeds is the selected seed set, |Seeds| ≤ k.
	Seeds []graph.NodeID
	// Coverage is the number of pool samples Seeds influences.
	Coverage int
	// CHat is ĉ_R(Seeds) = (b/|R|)·Coverage.
	CHat float64
}

// Solver is one MAXR approximation algorithm.
type Solver interface {
	// Name identifies the algorithm ("UBG", "MAF", ...).
	Name() string
	// Guarantee returns the paper's approximation ratio α for this
	// solver on this instance (used by the IMCAF sample bound Ψ).
	Guarantee(pool *ric.Pool, k int) float64
	// Solve picks up to k seeds maximizing influenced samples.
	Solve(pool *ric.Pool, k int) (Result, error)
}

// CtxSolver is a Solver whose selection loop supports cooperative
// cancellation. All solvers in this package implement it; the interface
// exists so SolveWithContext can degrade gracefully for third-party
// Solver implementations.
type CtxSolver interface {
	Solver
	// SolveCtx is Solve with ctx polled at batch boundaries. A completed
	// call returns exactly what Solve would.
	SolveCtx(ctx context.Context, pool *ric.Pool, k int) (Result, error)
}

// SolveWithContext dispatches to s.SolveCtx when the solver supports
// cancellation, and otherwise performs one up-front ctx check before the
// uninterruptible s.Solve.
//
//imc:longrun
func SolveWithContext(ctx context.Context, s Solver, pool *ric.Pool, k int) (Result, error) {
	if cs, ok := s.(CtxSolver); ok {
		return cs.SolveCtx(ctx, pool, k)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return s.Solve(pool, k)
}

func validate(pool *ric.Pool, k int) error {
	if pool.NumSamples() == 0 {
		return ErrEmptyPool
	}
	if k < 1 {
		return fmt.Errorf("maxr: budget k=%d must be ≥ 1", k)
	}
	return nil
}

// finalize packages a seed set into a Result.
func finalize(pool *ric.Pool, seeds []graph.NodeID) Result {
	cov := pool.CoverageCount(seeds)
	return Result{
		Seeds:    seeds,
		Coverage: cov,
		CHat:     pool.Scale() * float64(cov),
	}
}

// candidates returns all nodes that touch at least one sample, in
// descending touch-count order (ties by node ID). Nodes outside this
// set can never increase coverage.
func candidates(pool *ric.Pool) []graph.NodeID {
	n := pool.Graph().NumNodes()
	out := make([]graph.NodeID, 0, n/4+1)
	for v := 0; v < n; v++ {
		if pool.TouchCount(graph.NodeID(v)) > 0 {
			out = append(out, graph.NodeID(v))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := pool.TouchCount(out[i]), pool.TouchCount(out[j])
		if ti != tj {
			return ti > tj
		}
		return out[i] < out[j]
	})
	return out
}

// padSeeds fills seeds up to k with unused candidate nodes (then any
// remaining node IDs) so solvers always return a full budget when the
// graph allows it.
func padSeeds(pool *ric.Pool, seeds []graph.NodeID, k int) []graph.NodeID {
	if len(seeds) >= k {
		return seeds[:k]
	}
	used := make(map[graph.NodeID]struct{}, len(seeds))
	for _, s := range seeds {
		used[s] = struct{}{}
	}
	for _, v := range candidates(pool) {
		if len(seeds) >= k {
			return seeds
		}
		if _, ok := used[v]; !ok {
			seeds = append(seeds, v)
			used[v] = struct{}{}
		}
	}
	for v := 0; v < pool.Graph().NumNodes() && len(seeds) < k; v++ {
		if _, ok := used[graph.NodeID(v)]; !ok {
			seeds = append(seeds, graph.NodeID(v))
			used[graph.NodeID(v)] = struct{}{}
		}
	}
	return seeds
}
