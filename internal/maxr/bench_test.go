package maxr

import (
	"strconv"
	"testing"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/ric"
)

func benchPool(b *testing.B, samples int) *ric.Pool {
	b.Helper()
	g, err := gen.BarabasiAlbert(1500, 5, 7)
	if err != nil {
		b.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	part, err := community.Louvain(g, 7)
	if err != nil {
		b.Fatal(err)
	}
	part, err = part.SplitBySize(8, 7)
	if err != nil {
		b.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if err := pool.Generate(samples); err != nil {
		b.Fatal(err)
	}
	return pool
}

// BenchmarkUBG measures the full sandwich solver on a 3K-sample pool.
func BenchmarkUBG(b *testing.B) {
	pool := benchPool(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (UBG{}).Solve(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMAF measures the frequency-based solver (the paper's fast
// option).
func BenchmarkMAF(b *testing.B) {
	pool := benchPool(b, 3000)
	solver := MAF{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBT measures the bounded-threshold solver with a root cap.
func BenchmarkBT(b *testing.B) {
	pool := benchPool(b, 1000)
	solver := BT{MaxRoots: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyNuByK shows CELF's scaling with the seed budget.
func BenchmarkGreedyNuByK(b *testing.B) {
	pool := benchPool(b, 3000)
	for _, k := range []int{5, 20, 50} {
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := GreedyNu(pool, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyCHatByK shows plain greedy's scaling with k — the
// contrast with CELF explains Fig. 7's UBG-vs-MAF runtime gap.
func BenchmarkGreedyCHatByK(b *testing.B) {
	pool := benchPool(b, 3000)
	for _, k := range []int{5, 20, 50} {
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := GreedyCHat(pool, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
