package maxr

import (
	"context"
	"math"
	"reflect"
	"testing"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/ric"
)

// mergedInstance builds the randomPool instance, exposing (g, part) so
// shard pools can be generated over the same objects.
func mergedInstance(t *testing.T, seed uint64) (*graph.Graph, *community.Partition) {
	t.Helper()
	g, err := gen.RandomDirected(25, 80, 0.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(25, 5, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

// buildShardSet cuts [0, theta) into n contiguous ranges and generates
// each in its own offset pool over the shared instance.
func buildShardSet(t *testing.T, g *graph.Graph, part *community.Partition, theta, n int, seed uint64) *Shards {
	t.Helper()
	pools := make([]*ric.Pool, n)
	for w := 0; w < n; w++ {
		lo, hi := w*theta/n, (w+1)*theta/n
		p, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed, Offset: lo})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.EnsureCtx(context.Background(), hi-lo); err != nil {
			t.Fatal(err)
		}
		pools[w] = p
	}
	sh, err := NewShards(pools)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// TestMergedGreedyMatchesFlat is the merged-marginal determinism pin:
// for N ∈ {1, 2, 4} shards, both greedy loops and the UBG sandwich
// pick byte-identical seed sequences with identical coverage and ĉ_R
// to the single-pool solvers. The merged kernels replay the flat
// kernels' float addition order, so this is equality, not tolerance.
func TestMergedGreedyMatchesFlat(t *testing.T) {
	const theta, k, seed = 800, 5, 42
	g, part := mergedInstance(t, 7)
	flat, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.EnsureCtx(context.Background(), theta); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	wantC, err := GreedyCHatCtx(ctx, flat, k)
	if err != nil {
		t.Fatal(err)
	}
	wantNu, err := GreedyNuCtx(ctx, flat, k)
	if err != nil {
		t.Fatal(err)
	}
	wantUBG, err := UBG{}.SolveCtx(ctx, flat, k)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 4} {
		sh := buildShardSet(t, g, part, theta, n, seed)
		if sh.NumSamples() != theta {
			t.Fatalf("N=%d: shards hold %d samples, want %d", n, sh.NumSamples(), theta)
		}
		gotC, err := GreedyCHatShards(ctx, sh, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantC, gotC) {
			t.Errorf("N=%d: GreedyCHatShards picked %v, flat picked %v", n, gotC, wantC)
		}
		gotNu, err := GreedyNuShards(ctx, sh, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantNu, gotNu) {
			t.Errorf("N=%d: GreedyNuShards picked %v, flat picked %v", n, gotNu, wantNu)
		}
		gotUBG, err := UBGShards(ctx, sh, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantUBG.Seeds, gotUBG.Seeds) ||
			wantUBG.Coverage != gotUBG.Coverage || wantUBG.CHat != gotUBG.CHat {
			t.Errorf("N=%d: UBGShards = %+v, flat UBG = %+v", n, gotUBG, wantUBG)
		}
		// Merged evaluation primitives agree exactly too.
		if got, want := sh.CoverageCount(wantC), flat.CoverageCount(wantC); got != want {
			t.Errorf("N=%d: merged coverage %d, flat %d", n, got, want)
		}
		if got, want := sh.CHat(wantC), flat.CHat(wantC); got != want {
			t.Errorf("N=%d: merged ĉ %g, flat %g", n, got, want)
		}
		if got, want := sh.Scale(), flat.Scale(); math.Abs(got-want) > 0 {
			t.Errorf("N=%d: merged scale %g, flat %g", n, got, want)
		}
	}
}

// TestNewShardsValidation: gaps, overlaps, wrong start, and identity
// mismatches are refused at construction.
func TestNewShardsValidation(t *testing.T) {
	g, part := mergedInstance(t, 7)
	mk := func(offset, count int, seed uint64) *ric.Pool {
		p, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed, Offset: offset})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.EnsureCtx(context.Background(), count); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := NewShards(nil); err == nil {
		t.Error("empty shard set accepted")
	}
	if _, err := NewShards([]*ric.Pool{mk(5, 10, 1)}); err == nil {
		t.Error("non-zero start accepted")
	}
	if _, err := NewShards([]*ric.Pool{mk(0, 10, 1), mk(20, 10, 1)}); err == nil {
		t.Error("gap accepted")
	}
	if _, err := NewShards([]*ric.Pool{mk(0, 10, 1), mk(5, 10, 1)}); err == nil {
		t.Error("overlap accepted")
	}
	if _, err := NewShards([]*ric.Pool{mk(0, 10, 1), mk(10, 10, 2)}); err == nil {
		t.Error("cross-seed shard set accepted")
	}
	// A zero-width shard is fine (a worker acknowledging an empty range).
	sh, err := NewShards([]*ric.Pool{mk(0, 10, 1), mk(10, 0, 1), mk(10, 5, 1)})
	if err != nil {
		t.Fatalf("empty middle shard refused: %v", err)
	}
	if sh.NumSamples() != 15 {
		t.Fatalf("shards hold %d samples, want 15", sh.NumSamples())
	}
}
