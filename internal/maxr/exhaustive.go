package maxr

import (
	"fmt"

	"imc/internal/graph"
	"imc/internal/ric"
)

// ExhaustiveOptimum solves MAXR exactly by enumerating every k-subset
// of the candidate nodes (nodes touching at least one sample). It is
// exponential and exists so tests can measure each solver's empirical
// approximation ratio against the true pool optimum on small
// instances. maxCandidates guards against accidental blow-ups: the
// enumeration is rejected if more candidates touch the pool (0 means
// 24).
func ExhaustiveOptimum(pool *ric.Pool, k, maxCandidates int) (Result, error) {
	if err := validate(pool, k); err != nil {
		return Result{}, err
	}
	if maxCandidates <= 0 {
		maxCandidates = 24
	}
	cands := candidates(pool)
	if len(cands) > maxCandidates {
		return Result{}, fmt.Errorf("maxr: %d candidates exceed enumeration bound %d", len(cands), maxCandidates)
	}
	if k > len(cands) {
		k = len(cands)
	}
	var (
		best     []graph.NodeID
		bestCov  = -1
		current  = make([]graph.NodeID, 0, k)
		nodeList = cands
	)
	var recurse func(start int)
	recurse = func(start int) {
		if len(current) == k {
			if cov := pool.CoverageCount(current); cov > bestCov {
				bestCov = cov
				best = append(best[:0], current...)
			}
			return
		}
		for i := start; i <= len(nodeList)-(k-len(current)); i++ {
			current = append(current, nodeList[i])
			recurse(i + 1)
			current = current[:len(current)-1]
		}
	}
	recurse(0)
	if bestCov < 0 {
		return Result{}, ErrEmptyPool
	}
	return finalize(pool, padSeeds(pool, best, k)), nil
}
