package maxr

import (
	"math"
	"testing"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/ric"
)

// isolatedPairs builds a 4-node edgeless graph with two 2-member
// communities of threshold 2: community A = {0,1} (benefit 10) and
// B = {2,3} (benefit 1). Every RIC sample's cover index is then exactly
// "each member covers itself", making solver behaviour fully
// predictable: the only way to influence a sample is to seed both
// members of its source community.
func isolatedPairs(t *testing.T) (*graph.Graph, *community.Partition) {
	t.Helper()
	b := graph.NewBuilder(4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(4, [][]graph.NodeID{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	if err := part.SetBenefit(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := part.SetBenefit(1, 1); err != nil {
		t.Fatal(err)
	}
	return g, part
}

func pairPool(t *testing.T, count int) *ric.Pool {
	t.Helper()
	g, part := isolatedPairs(t)
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(count); err != nil {
		t.Fatal(err)
	}
	return pool
}

func randomPool(t *testing.T, seed uint64) *ric.Pool {
	t.Helper()
	g, err := gen.RandomDirected(25, 80, 0.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(25, 5, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(800); err != nil {
		t.Fatal(err)
	}
	return pool
}

func seedSet(seeds []graph.NodeID) map[graph.NodeID]bool {
	m := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		m[s] = true
	}
	return m
}

func TestCHatNonSubmodularOnPairs(t *testing.T) {
	pool := pairPool(t, 2000)
	// Lemma 2's phenomenon: singletons are worthless, the pair jumps.
	if c := pool.CHat([]graph.NodeID{0}); c != 0 {
		t.Fatalf("ĉ({0}) = %g, want 0", c)
	}
	if c := pool.CHat([]graph.NodeID{0, 1}); c <= 0 {
		t.Fatalf("ĉ({0,1}) = %g, want > 0", c)
	}
}

func TestAllSolversFindTheRichPair(t *testing.T) {
	pool := pairPool(t, 2000)
	solvers := []Solver{UBG{}, MAF{}, BT{}, MB{}}
	for _, s := range solvers {
		res, err := s.Solve(pool, 2)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		got := seedSet(res.Seeds)
		if !got[0] || !got[1] {
			t.Errorf("%s picked %v, want {0,1} (benefit-10 community)", s.Name(), res.Seeds)
		}
		// ĉ must equal 10 · (fraction of samples sourced from A).
		want := 11.0 / float64(pool.NumSamples()) * float64(pool.CommunityFrequency(0))
		if math.Abs(res.CHat-want) > 1e-9 {
			t.Errorf("%s: ĉ = %g, want %g", s.Name(), res.CHat, want)
		}
	}
}

func TestBudgetFourTakesBothCommunities(t *testing.T) {
	pool := pairPool(t, 2000)
	for _, s := range []Solver{UBG{}, BT{}, MB{}} {
		res, err := s.Solve(pool, 4)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Coverage != pool.NumSamples() {
			t.Errorf("%s with k=4 covered %d/%d samples", s.Name(), res.Coverage, pool.NumSamples())
		}
	}
}

func TestUBGDominatesItsComponents(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		pool := randomPool(t, seed*10+1)
		ubg, err := UBG{}.Solve(pool, 4)
		if err != nil {
			t.Fatal(err)
		}
		sNu, err := GreedyNu(pool, 4)
		if err != nil {
			t.Fatal(err)
		}
		sC, err := GreedyCHat(pool, 4)
		if err != nil {
			t.Fatal(err)
		}
		if ubg.Coverage < pool.CoverageCount(sNu) || ubg.Coverage < pool.CoverageCount(sC) {
			t.Fatalf("UBG %d below components %d / %d", ubg.Coverage, pool.CoverageCount(sNu), pool.CoverageCount(sC))
		}
	}
}

func TestMAFDominatesItsComponents(t *testing.T) {
	pool := randomPool(t, 77)
	m := MAF{Seed: 3}
	full, err := m.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m.SolveS1Only(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.SolveS2Only(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if full.Coverage < s1.Coverage || full.Coverage < s2.Coverage {
		t.Fatalf("MAF %d below S1 %d or S2 %d", full.Coverage, s1.Coverage, s2.Coverage)
	}
}

func TestMBDominatesMAFAndBT(t *testing.T) {
	pool := randomPool(t, 55)
	mb, err := MB{}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	maf, err := MAF{}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := BT{}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Coverage < maf.Coverage || mb.Coverage < bt.Coverage {
		t.Fatalf("MB %d below MAF %d or BT %d", mb.Coverage, maf.Coverage, bt.Coverage)
	}
}

func TestSolversReturnFullBudgetDistinctSeeds(t *testing.T) {
	pool := randomPool(t, 33)
	for _, s := range []Solver{UBG{}, MAF{}, BT{}, MB{}} {
		res, err := s.Solve(pool, 6)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(res.Seeds) != 6 {
			t.Fatalf("%s returned %d seeds, want 6", s.Name(), len(res.Seeds))
		}
		if len(seedSet(res.Seeds)) != 6 {
			t.Fatalf("%s returned duplicate seeds: %v", s.Name(), res.Seeds)
		}
	}
}

func TestGuaranteeFormulas(t *testing.T) {
	pool := pairPool(t, 100) // r=2 communities, h=2
	if got, want := (MAF{}).Guarantee(pool, 4), float64(4/2)/2.0; got != want {
		t.Fatalf("MAF guarantee = %g, want %g", got, want)
	}
	if got, want := (BT{}).Guarantee(pool, 4), (1-1/math.E)/4; got != want {
		t.Fatalf("BT guarantee = %g, want %g", got, want)
	}
	if got, want := (BT{Depth: 3}).Guarantee(pool, 4), (1-1/math.E)/16; math.Abs(got-want) > 1e-12 {
		t.Fatalf("BT depth-3 guarantee = %g, want %g", got, want)
	}
	wantMB := math.Sqrt((1 - 1/math.E) * 2 / (4 * 2))
	if got := (MB{}).Guarantee(pool, 4); math.Abs(got-wantMB) > 1e-12 {
		t.Fatalf("MB guarantee = %g, want %g", got, wantMB)
	}
	if got := (UBG{}).Guarantee(pool, 4); math.Abs(got-(1-1/math.E)) > 1e-12 {
		t.Fatalf("UBG guarantee = %g", got)
	}
}

func TestMAFTheorem3Guarantee(t *testing.T) {
	// Empirical check of Theorem 3: MAF's coverage is ≥ ⌊k/h⌋/r of the
	// best coverage we can find (using UBG as a strong reference).
	for seed := uint64(0); seed < 3; seed++ {
		pool := randomPool(t, 200+seed)
		k := 4
		maf, err := MAF{}.Solve(pool, k)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := UBG{}.Solve(pool, k)
		if err != nil {
			t.Fatal(err)
		}
		alpha := (MAF{}).Guarantee(pool, k)
		if float64(maf.Coverage) < alpha*float64(ref.Coverage)-1e-9 {
			t.Fatalf("seed %d: MAF %d below α·UBG = %g", seed, maf.Coverage, alpha*float64(ref.Coverage))
		}
	}
}

func TestBTDepth3OnBoundedThreeThresholds(t *testing.T) {
	g, err := gen.RandomDirected(20, 60, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(20, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(3)
	part.SetPopulationBenefits()
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(300); err != nil {
		t.Fatal(err)
	}
	res, err := BT{Depth: 3, MaxRoots: 10}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 4 || len(seedSet(res.Seeds)) != 4 {
		t.Fatalf("BT^3 seeds invalid: %v", res.Seeds)
	}
	if res.Coverage != pool.CoverageCount(res.Seeds) {
		t.Fatal("reported coverage inconsistent")
	}
}

func TestBTMaxRootsStillValid(t *testing.T) {
	pool := randomPool(t, 44)
	full, err := BT{}.Solve(pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := BT{MaxRoots: 2}.Solve(pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Coverage > full.Coverage {
		t.Fatalf("capped BT %d beat full BT %d (caps only restrict the search)", capped.Coverage, full.Coverage)
	}
	if len(capped.Seeds) != 3 {
		t.Fatalf("capped BT returned %d seeds", len(capped.Seeds))
	}
}

func TestMAFSmartMembers(t *testing.T) {
	pool := randomPool(t, 88)
	smart, err := MAF{SmartMembers: true}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(smart.Seeds) != 4 || len(seedSet(smart.Seeds)) != 4 {
		t.Fatalf("smart MAF seeds invalid: %v", smart.Seeds)
	}
	// Deterministic without a seed: no randomness left in S1.
	again, err := MAF{SmartMembers: true}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range smart.Seeds {
		if smart.Seeds[i] != again.Seeds[i] {
			t.Fatal("smart MAF nondeterministic")
		}
	}
}

func TestBTParallelRootsDeterministic(t *testing.T) {
	pool := randomPool(t, 66)
	serial, err := BT{Workers: 1}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := BT{Workers: 4}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Coverage != parallel.Coverage || len(serial.Seeds) != len(parallel.Seeds) {
		t.Fatalf("worker count changed result: %+v vs %+v", serial, parallel)
	}
	for i := range serial.Seeds {
		if serial.Seeds[i] != parallel.Seeds[i] {
			t.Fatalf("seeds differ across worker counts: %v vs %v", serial.Seeds, parallel.Seeds)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	g, part := isolatedPairs(t)
	empty, err := ric.NewPool(g, part, ric.PoolOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Solver{UBG{}, MAF{}, BT{}, MB{}} {
		if _, err := s.Solve(empty, 2); err == nil {
			t.Fatalf("%s accepted empty pool", s.Name())
		}
	}
	pool := pairPool(t, 10)
	for _, s := range []Solver{UBG{}, MAF{}, BT{}, MB{}} {
		if _, err := s.Solve(pool, 0); err == nil {
			t.Fatalf("%s accepted k=0", s.Name())
		}
	}
}

func TestSolversDeterministic(t *testing.T) {
	pool := randomPool(t, 91)
	for _, s := range []Solver{UBG{}, MAF{Seed: 9}, BT{}, MB{MAF: MAF{Seed: 9}}} {
		a, err := s.Solve(pool, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Solve(pool, 5)
		if err != nil {
			t.Fatal(err)
		}
		if a.Coverage != b.Coverage || len(a.Seeds) != len(b.Seeds) {
			t.Fatalf("%s not deterministic", s.Name())
		}
		for i := range a.Seeds {
			if a.Seeds[i] != b.Seeds[i] {
				t.Fatalf("%s not deterministic: %v vs %v", s.Name(), a.Seeds, b.Seeds)
			}
		}
	}
}

func TestSandwichRatioBounds(t *testing.T) {
	pool := randomPool(t, 17)
	res, err := UBG{}.Solve(pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := SandwichRatio(pool, res.Seeds)
	if ratio < 0 || ratio > 1+1e-9 {
		t.Fatalf("sandwich ratio %g out of [0,1]", ratio)
	}
	// With thresholds 1, the ratio is exactly 1 (Lemma 4).
	g, err := gen.RandomDirected(20, 50, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(20, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(1)
	p1, err := ric.NewPool(g, part, ric.PoolOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Generate(400); err != nil {
		t.Fatal(err)
	}
	res1, err := UBG{}.Solve(p1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r := SandwichRatio(p1, res1.Seeds); math.Abs(r-1) > 1e-9 {
		t.Fatalf("h=1 sandwich ratio = %g, want 1", r)
	}
}

func TestGreedyNuMonotoneInK(t *testing.T) {
	pool := randomPool(t, 123)
	prev := -1.0
	for k := 1; k <= 6; k++ {
		seeds, err := GreedyNu(pool, k)
		if err != nil {
			t.Fatal(err)
		}
		nu := pool.NuHat(seeds)
		if nu < prev-1e-9 {
			t.Fatalf("ν̂ decreased from %g to %g at k=%d", prev, nu, k)
		}
		prev = nu
	}
}
