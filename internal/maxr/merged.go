package maxr

import (
	"context"
	"fmt"
	"sort"

	"imc/internal/graph"
	"imc/internal/ric"
)

// Merged-marginal solving over shard pools: the distributed runtime
// (internal/shard) holds the sample sequence [0, Θ) as N contiguous
// offset pools instead of one flat pool, and the greedy loops here run
// on marginals merged across them.
//
// The merge is byte-exact, not merely statistically equivalent. Two
// facts make that work:
//
//   - Integer coverage counts are position-independent sums, so the
//     ĉ_R marginal (coverageGain) over shards equals the flat value
//     exactly.
//   - Float marginals (fractionalGain, tieBreakGain) are accumulated
//     per cover entry, and a flat pool's entry list for node v is its
//     shards' entry lists concatenated in range order. The merged
//     kernels thread ONE accumulator through the shards in range order
//     — the identical sequence of float additions the flat kernel
//     performs — so even non-associative float rounding agrees to the
//     last ULP. Summing per-shard subtotals instead would not have this
//     property; that is why the kernels below duplicate the inner loop
//     rather than calling the per-pool gain functions N times.
//
// CELF ordering is therefore preserved: the lazy-greedy heap sees the
// same gains in the same order as the single-pool solver, and the seed
// sequence is identical by construction, not by luck.

// Shards is an ordered, contiguous decomposition of one pool identity:
// pools[0] starts at stream offset 0 and each subsequent pool starts
// where the previous one ends, so together they hold exactly the
// sample sequence [0, Θ) a single flat pool would. All pools must
// share the same graph and partition objects, seed, and model.
type Shards struct {
	pools []*ric.Pool //imc:guardedby immutable
	total int         //imc:guardedby immutable
}

// NewShards validates and wraps an ordered shard decomposition. Empty
// shards are permitted (a worker can be assigned a zero-width range);
// an empty pools list is not.
func NewShards(pools []*ric.Pool) (*Shards, error) {
	if len(pools) == 0 {
		return nil, fmt.Errorf("maxr: shard set must hold at least one pool")
	}
	first := pools[0]
	if first.Offset() != 0 {
		return nil, fmt.Errorf("maxr: first shard starts at stream %d, want 0", first.Offset())
	}
	next := 0
	for i, p := range pools {
		if p.Graph() != first.Graph() || p.Partition() != first.Partition() {
			return nil, fmt.Errorf("maxr: shard %d covers different graph or partition objects", i)
		}
		if p.Seed() != first.Seed() || p.Model() != first.Model() {
			return nil, fmt.Errorf("maxr: shard %d has seed %d model %v, want seed %d model %v",
				i, p.Seed(), p.Model(), first.Seed(), first.Model())
		}
		if p.Offset() != next {
			return nil, fmt.Errorf("maxr: shard %d starts at stream %d but the previous shard ends at %d — ranges must be contiguous", i, p.Offset(), next)
		}
		next = p.Offset() + p.NumSamples()
	}
	return &Shards{pools: pools, total: next}, nil
}

// NumShards returns how many shard pools the decomposition holds.
func (sh *Shards) NumShards() int { return len(sh.pools) }

// NumSamples returns Θ, the total sample count across shards.
func (sh *Shards) NumSamples() int { return sh.total }

// Graph returns the shared underlying graph.
func (sh *Shards) Graph() *graph.Graph { return sh.pools[0].Graph() }

// TouchCount returns how many samples across all shards node v touches
// — equal to the flat pool's touch count.
func (sh *Shards) TouchCount(v graph.NodeID) int {
	n := 0
	for _, p := range sh.pools {
		n += p.TouchCount(v)
	}
	return n
}

// Scale is b/Θ: one influenced sample's contribution to ĉ_R.
func (sh *Shards) Scale() float64 {
	return sh.pools[0].Partition().TotalBenefit() / float64(sh.total)
}

// newStates returns one empty coverage state per shard.
func (sh *Shards) newStates() []*ric.State {
	sts := make([]*ric.State, len(sh.pools))
	for i, p := range sh.pools {
		sts[i] = p.NewState()
	}
	return sts
}

// CoverageCount returns the number of samples across all shards that
// seeds influences — an integer sum, exactly the flat pool's count.
func (sh *Shards) CoverageCount(seeds []graph.NodeID) int {
	n := 0
	for _, p := range sh.pools {
		n += p.CoverageCount(seeds)
	}
	return n
}

// CHat evaluates ĉ_R(S) over the merged sample set.
func (sh *Shards) CHat(seeds []graph.NodeID) float64 {
	if sh.total == 0 {
		return 0
	}
	return sh.Scale() * float64(sh.CoverageCount(seeds))
}

// mergedCoverageGain is coverageGain with one accumulator threaded
// through the shards in range order.
//
//imc:hotpath
func mergedCoverageGain(pools []*ric.Pool, sts []*ric.State, v graph.NodeID) int {
	sts = sts[:len(pools)] // bound hint: one state per pool, checked once
	gain := 0
	for si, pool := range pools {
		st := sts[si]
		for _, e := range pool.Entries(v) {
			h := pool.Sample(int(e.Sample)).Threshold
			cur := st.CoverCount(e.Sample)
			if cur >= h {
				continue
			}
			var add int32
			if base := st.Covered(e.Sample); base == nil {
				add = int32(e.Bits.OnesCount())
			} else {
				add = int32(e.Bits.NewBitsOver(base))
			}
			if cur+add >= h {
				gain++
			}
		}
	}
	return gain
}

// mergedFractionalGain is fractionalGain with one accumulator threaded
// through the shards in range order — the same float addition sequence
// as the flat kernel, so the result matches to the last ULP.
//
//imc:hotpath
func mergedFractionalGain(pools []*ric.Pool, sts []*ric.State, v graph.NodeID) float64 {
	sts = sts[:len(pools)] // bound hint: one state per pool, checked once
	gain := 0.0
	for si, pool := range pools {
		st := sts[si]
		for _, e := range pool.Entries(v) {
			h := pool.Sample(int(e.Sample)).Threshold
			cur := st.CoverCount(e.Sample)
			if cur >= h {
				continue
			}
			var add int32
			if base := st.Covered(e.Sample); base == nil {
				add = int32(e.Bits.OnesCount())
			} else {
				add = int32(e.Bits.NewBitsOver(base))
			}
			after := cur + add
			if after > h {
				after = h
			}
			gain += float64(after-cur) / float64(h)
		}
	}
	return gain
}

// mergedTieBreakGain is tieBreakGain with one accumulator threaded
// through the shards in range order.
//
//imc:hotpath
func mergedTieBreakGain(pools []*ric.Pool, sts []*ric.State, v graph.NodeID) float64 {
	sts = sts[:len(pools)] // bound hint: one state per pool, checked once
	gain := 0.0
	for si, pool := range pools {
		st := sts[si]
		for _, e := range pool.Entries(v) {
			h := pool.Sample(int(e.Sample)).Threshold
			cur := st.CoverCount(e.Sample)
			if cur >= h {
				continue
			}
			var add int32
			if base := st.Covered(e.Sample); base == nil {
				add = int32(e.Bits.OnesCount())
			} else {
				add = int32(e.Bits.NewBitsOver(base))
			}
			after := cur + add
			if after > h {
				after = h
			}
			gain += float64(after-cur) / float64(h) * (1 + float64(cur)/float64(h))
		}
	}
	return gain
}

// shardCandidates returns all nodes touching at least one sample in any
// shard, ordered by merged touch count descending (ties by node ID) —
// the same order candidates() computes on the flat pool.
func shardCandidates(sh *Shards) ([]graph.NodeID, []int) {
	n := sh.Graph().NumNodes()
	touch := make([]int, n)
	for _, p := range sh.pools {
		for v := 0; v < n; v++ {
			touch[v] += p.TouchCount(graph.NodeID(v))
		}
	}
	out := make([]graph.NodeID, 0, n/4+1)
	for v := 0; v < n; v++ {
		if touch[v] > 0 {
			out = append(out, graph.NodeID(v))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ti, tj := touch[out[i]], touch[out[j]]
		if ti != tj {
			return ti > tj
		}
		return out[i] < out[j]
	})
	return out, touch
}

// padShardSeeds mirrors padSeeds over the merged candidate order.
func padShardSeeds(sh *Shards, seeds []graph.NodeID, k int) []graph.NodeID {
	if len(seeds) >= k {
		return seeds[:k]
	}
	used := make(map[graph.NodeID]struct{}, len(seeds))
	for _, s := range seeds {
		used[s] = struct{}{}
	}
	cands, _ := shardCandidates(sh)
	for _, v := range cands {
		if len(seeds) >= k {
			return seeds
		}
		if _, ok := used[v]; !ok {
			seeds = append(seeds, v)
			used[v] = struct{}{}
		}
	}
	for v := 0; v < sh.Graph().NumNodes() && len(seeds) < k; v++ {
		if _, ok := used[graph.NodeID(v)]; !ok {
			seeds = append(seeds, graph.NodeID(v))
			used[graph.NodeID(v)] = struct{}{}
		}
	}
	return seeds
}

func validateShards(sh *Shards, k int) error {
	if sh.total == 0 {
		return ErrEmptyPool
	}
	if k < 1 {
		return fmt.Errorf("maxr: budget k=%d must be ≥ 1", k)
	}
	return nil
}

// GreedyCHatShards runs GreedyCHatCtx's selection loop on merged
// marginals: same exact touch-count prune, same tie-break, same polled
// cancellation — and, because the merged kernels replay the flat
// kernels' float addition order, the same seed sequence.
//
//imc:hotpath
//imc:longrun
func GreedyCHatShards(ctx context.Context, sh *Shards, k int) ([]graph.NodeID, error) {
	if err := validateShards(sh, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cands, touch := shardCandidates(sh)
	sts := sh.newStates()
	seeds := make([]graph.NodeID, 0, k)
	used := make([]bool, sh.Graph().NumNodes())
	evals := 0
	for len(seeds) < k {
		best := graph.NodeID(-1)
		bestGain := -1
		bestFrac := -1.0
		for _, v := range cands {
			if evals&(ctxPollBatch-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			evals++
			if used[v] {
				continue
			}
			// The exact prune from GreedyCHatCtx: candidates are sorted
			// by merged touch count, which bounds the merged gain.
			if touch[v] < bestGain {
				break
			}
			g := mergedCoverageGain(sh.pools, sts, v)
			if g < bestGain {
				continue
			}
			if g > bestGain {
				bestGain = g
				bestFrac = mergedTieBreakGain(sh.pools, sts, v)
				best = v
				continue
			}
			if f := mergedTieBreakGain(sh.pools, sts, v); f > bestFrac {
				bestFrac = f
				best = v
			}
		}
		if best < 0 {
			break
		}
		for _, st := range sts {
			st.Add(best)
		}
		seeds = append(seeds, best)
		used[best] = true
	}
	return padShardSeeds(sh, seeds, k), nil
}

// GreedyNuShards runs CELF lazy greedy on the merged ν_R marginal. The
// heap order, stale-gain recomputation, and pop sequence mirror
// GreedyNuCtx exactly; merged gains equal flat gains bit-for-bit, so
// the CELF ordering — and the seed set — is preserved across any shard
// decomposition.
//
//imc:hotpath
//imc:longrun
func GreedyNuShards(ctx context.Context, sh *Shards, k int) ([]graph.NodeID, error) {
	if err := validateShards(sh, k); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cands, _ := shardCandidates(sh)
	sts := sh.newStates()
	h := make(celfHeap, 0, len(cands))
	for _, v := range cands {
		h = append(h, celfItem{node: v, gain: mergedFractionalGain(sh.pools, sts, v), round: 0})
	}
	h.init()
	seeds := make([]graph.NodeID, 0, k)
	pops := 0
	for len(seeds) < k && len(h) > 0 {
		if pops&(ctxPollBatch-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pops++
		top := h.pop()
		if int(top.round) == len(seeds) {
			if top.gain <= 0 {
				break
			}
			for _, st := range sts {
				st.Add(top.node)
			}
			seeds = append(seeds, top.node)
			continue
		}
		top.gain = mergedFractionalGain(sh.pools, sts, top.node)
		top.round = int32(len(seeds))
		h.push(top)
	}
	return padShardSeeds(sh, seeds, k), nil
}

// UBGShards is the sandwich solver (UBG) on a shard decomposition:
// greedy on the merged ν_R bound plus greedy on merged ĉ_R, keeping
// the better seed set under the merged coverage count — the same
// selection rule as UBG.SolveCtx on a flat pool.
//
//imc:longrun
func UBGShards(ctx context.Context, sh *Shards, k int) (Result, error) {
	if err := validateShards(sh, k); err != nil {
		return Result{}, err
	}
	sNu, err := GreedyNuShards(ctx, sh, k)
	if err != nil {
		return Result{}, err
	}
	sC, err := GreedyCHatShards(ctx, sh, k)
	if err != nil {
		return Result{}, err
	}
	covNu := sh.CoverageCount(sNu)
	covC := sh.CoverageCount(sC)
	if covC > covNu {
		return Result{Seeds: sC, Coverage: covC, CHat: sh.Scale() * float64(covC)}, nil
	}
	return Result{Seeds: sNu, Coverage: covNu, CHat: sh.Scale() * float64(covNu)}, nil
}
