package maxr

import (
	"testing"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/ric"
)

// smallRandomPool keeps the candidate set enumerable.
func smallRandomPool(t *testing.T, seed uint64) *ric.Pool {
	t.Helper()
	g, err := gen.RandomDirected(12, 24, 0.4, seed)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(12, 4, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed + 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(400); err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestExhaustiveOptimumDominatesSolvers(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		pool := smallRandomPool(t, seed*11+1)
		opt, err := ExhaustiveOptimum(pool, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Solver{UBG{}, MAF{}, BT{}, MB{}} {
			res, err := s.Solve(pool, 3)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if res.Coverage > opt.Coverage {
				t.Fatalf("seed %d: %s coverage %d beats claimed optimum %d",
					seed, s.Name(), res.Coverage, opt.Coverage)
			}
		}
	}
}

// TestEmpiricalRatiosBeatTheory verifies each solver meets its paper
// guarantee against the exact pool optimum — with generous slack the
// guarantees are far from tight in practice, so this acts as a strong
// regression tripwire.
func TestEmpiricalRatiosBeatTheory(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		pool := smallRandomPool(t, seed*7+3)
		k := 4
		opt, err := ExhaustiveOptimum(pool, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Coverage == 0 {
			continue
		}
		for _, s := range []Solver{UBG{}, MAF{}, MB{}, BT{}} {
			res, err := s.Solve(pool, k)
			if err != nil {
				t.Fatal(err)
			}
			alpha := s.Guarantee(pool, k)
			got := float64(res.Coverage)
			want := alpha * float64(opt.Coverage)
			// UBG's nominal 1−1/e is data-dependent (sandwich); scale it
			// by the realized ratio as Theorem 2 prescribes.
			if s.Name() == "UBG" {
				want *= SandwichRatio(pool, res.Seeds)
			}
			if got < want-1e-9 {
				t.Fatalf("seed %d: %s coverage %v below guarantee %v (α=%g, OPT=%d)",
					seed, s.Name(), got, want, alpha, opt.Coverage)
			}
		}
	}
}

func TestExhaustiveOptimumBounds(t *testing.T) {
	pool := smallRandomPool(t, 99)
	if _, err := ExhaustiveOptimum(pool, 2, 1); err == nil {
		t.Fatal("want candidate-bound error")
	}
	if _, err := ExhaustiveOptimum(pool, 0, 0); err == nil {
		t.Fatal("want k error")
	}
	// k above candidate count clamps instead of failing.
	res, err := ExhaustiveOptimum(pool, 11, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) == 0 {
		t.Fatal("clamped enumeration returned nothing")
	}
}
