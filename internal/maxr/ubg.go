package maxr

import (
	"context"
	"math"

	"imc/internal/graph"
	"imc/internal/ric"
)

// UBG is the Upper-Bound Greedy / sandwich solver (paper Alg. 2). It
// greedily optimizes the submodular upper bound ν_R and, separately,
// ĉ_R itself, and keeps whichever seed set scores higher under ĉ_R.
// Theorem 2 gives the data-dependent guarantee
// (ĉ_R(S_ν)/ν_R(S_ν))·(1−1/e).
type UBG struct{}

var _ CtxSolver = UBG{}

// Name implements Solver.
func (UBG) Name() string { return "UBG" }

// Guarantee implements Solver. The data-dependent sandwich factor is
// only known post hoc (see Result-side SandwichRatio); for sample-size
// planning we use the nominal 1−1/e.
func (UBG) Guarantee(_ *ric.Pool, _ int) float64 { return 1 - 1/math.E }

// Solve implements Solver.
func (u UBG) Solve(pool *ric.Pool, k int) (Result, error) {
	return u.SolveCtx(context.Background(), pool, k)
}

// SolveCtx implements CtxSolver: both greedy halves poll ctx at batch
// boundaries.
//
//imc:longrun
func (UBG) SolveCtx(ctx context.Context, pool *ric.Pool, k int) (Result, error) {
	if err := validate(pool, k); err != nil {
		return Result{}, err
	}
	sNu, err := GreedyNuCtx(ctx, pool, k)
	if err != nil {
		return Result{}, err
	}
	sC, err := GreedyCHatCtx(ctx, pool, k)
	if err != nil {
		return Result{}, err
	}
	rNu := finalize(pool, sNu)
	rC := finalize(pool, sC)
	if rC.Coverage > rNu.Coverage {
		return rC, nil
	}
	return rNu, nil
}

// SandwichRatio reports ĉ_R(S)/ν_R(S) for a seed set — the empirical
// factor in UBG's guarantee, plotted in the paper's Fig. 8 (there
// against the Monte-Carlo estimates of c and ν).
func SandwichRatio(pool *ric.Pool, seeds []graph.NodeID) float64 {
	nu := pool.NuHat(seeds)
	if nu <= 0 {
		return 0
	}
	return pool.CHat(seeds) / nu
}
