package maxr

import (
	"context"
	"sort"

	"imc/internal/graph"
	"imc/internal/ric"
	"imc/internal/xrand"
)

// MAF is the Most-Appearance-First solver (paper Alg. 3). It builds two
// candidate seed sets — S1 activates whole communities in descending
// order of how often they appear as sample sources, spending h_i budget
// per community; S2 takes the k nodes touching the most samples — and
// keeps whichever influences more samples. Theorem 3: S1 alone already
// guarantees the ⌊k/h⌋/r ratio.
type MAF struct {
	// Seed drives S1's random member picks (the paper picks h arbitrary
	// members per chosen community).
	Seed uint64
	// SmartMembers switches S1's member picks from the paper's random
	// choice to the h members with the highest sample-touch counts — a
	// strictly-more-informed variant kept as an ablation knob.
	SmartMembers bool
}

var _ CtxSolver = MAF{}

// Name implements Solver.
func (MAF) Name() string { return "MAF" }

// Guarantee implements Solver: ⌊k/h⌋/r with h = max_i h_i.
func (MAF) Guarantee(pool *ric.Pool, k int) float64 {
	h := pool.Partition().MaxThreshold()
	r := pool.Partition().NumCommunities()
	if h == 0 || r == 0 {
		return 0
	}
	return float64(k/h) / float64(r)
}

// Solve implements Solver.
func (m MAF) Solve(pool *ric.Pool, k int) (Result, error) {
	return m.SolveCtx(context.Background(), pool, k)
}

// SolveCtx implements CtxSolver. MAF's two candidate builds are cheap
// (sort-dominated), so one poll before each suffices.
//
//imc:longrun
func (m MAF) SolveCtx(ctx context.Context, pool *ric.Pool, k int) (Result, error) {
	if err := validate(pool, k); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	s1 := m.buildS1(pool, k)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	s2 := m.buildS2(pool, k)
	r1 := finalize(pool, padSeeds(pool, s1, k))
	r2 := finalize(pool, padSeeds(pool, s2, k))
	if r2.Coverage > r1.Coverage {
		return r2, nil
	}
	return r1, nil
}

// buildS1 greedily activates the most frequently sampled communities,
// taking each community's full threshold h_i of members, until the
// budget cannot fit another community.
func (m MAF) buildS1(pool *ric.Pool, k int) []graph.NodeID {
	part := pool.Partition()
	order := make([]int, part.NumCommunities())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		fa, fb := pool.CommunityFrequency(order[a]), pool.CommunityFrequency(order[b])
		if fa != fb {
			return fa > fb
		}
		return order[a] < order[b]
	})
	rng := xrand.New(m.Seed)
	seeds := make([]graph.NodeID, 0, k)
	for _, ci := range order {
		c := part.Community(ci)
		if len(seeds)+c.Threshold > k {
			continue
		}
		if m.SmartMembers {
			members := append([]graph.NodeID(nil), c.Members...)
			sort.Slice(members, func(a, b int) bool {
				ta, tb := pool.TouchCount(members[a]), pool.TouchCount(members[b])
				if ta != tb {
					return ta > tb
				}
				return members[a] < members[b]
			})
			seeds = append(seeds, members[:c.Threshold]...)
		} else {
			for _, idx := range rng.SampleK(len(c.Members), c.Threshold) {
				seeds = append(seeds, c.Members[idx])
			}
		}
		if len(seeds) == k {
			break
		}
	}
	return seeds
}

// buildS2 takes the k nodes appearing in the most samples.
func (m MAF) buildS2(pool *ric.Pool, k int) []graph.NodeID {
	cands := candidates(pool) // already sorted by touch count desc
	if len(cands) > k {
		cands = cands[:k]
	}
	return append([]graph.NodeID(nil), cands...)
}

// SolveS1Only exposes the S1 component alone (used by the ablation
// bench comparing MAF's two halves).
func (m MAF) SolveS1Only(pool *ric.Pool, k int) (Result, error) {
	if err := validate(pool, k); err != nil {
		return Result{}, err
	}
	return finalize(pool, padSeeds(pool, m.buildS1(pool, k), k)), nil
}

// SolveS2Only exposes the S2 component alone.
func (m MAF) SolveS2Only(pool *ric.Pool, k int) (Result, error) {
	if err := validate(pool, k); err != nil {
		return Result{}, err
	}
	return finalize(pool, padSeeds(pool, m.buildS2(pool, k), k)), nil
}
