package maxr

import (
	"fmt"
	"math"

	"imc/internal/graph"
	"imc/internal/ric"
)

// Budgeted MAXR: the cost-aware extension in the spirit of the paper's
// cost-aware targeted viral marketing reference [8]. Instead of a
// cardinality bound k, every node u carries a positive cost c(u) and
// the seed set must fit a budget B. The solver runs the classic
// benefit-per-cost greedy twice (rate greedy and plain greedy) plus the
// best single affordable node, and keeps the best under ĉ_R — the
// standard knapsack-greedy combination that recovers a constant factor
// for submodular objectives and serves as a strong heuristic for the
// non-submodular ĉ_R.

// CostFunc prices a node. Costs must be positive; non-finite or
// non-positive values make the node unaffordable.
type CostFunc func(graph.NodeID) float64

// UniformCost prices every node at 1, making Budget equivalent to a
// cardinality constraint.
func UniformCost(graph.NodeID) float64 { return 1 }

// DegreeCost prices each node proportionally to its out-degree plus
// one — the common "influencers charge more" model.
func DegreeCost(g *graph.Graph, unit float64) CostFunc {
	return func(u graph.NodeID) float64 {
		return unit * float64(g.OutDegree(u)+1)
	}
}

// SolveBudgeted picks a seed set of total cost ≤ budget maximizing
// influenced samples in the pool.
func SolveBudgeted(pool *ric.Pool, cost CostFunc, budget float64) (Result, error) {
	if pool.NumSamples() == 0 {
		return Result{}, ErrEmptyPool
	}
	if cost == nil {
		cost = UniformCost
	}
	if budget <= 0 {
		return Result{}, fmt.Errorf("maxr: budget %g must be positive", budget)
	}
	cands := candidates(pool)
	affordable := make([]graph.NodeID, 0, len(cands))
	for _, v := range cands {
		if c := cost(v); c > 0 && !math.IsInf(c, 0) && !math.IsNaN(c) && c <= budget {
			affordable = append(affordable, v)
		}
	}
	if len(affordable) == 0 {
		return Result{Seeds: []graph.NodeID{}}, nil
	}

	rate := budgetedGreedy(pool, affordable, cost, budget, true)
	plain := budgetedGreedy(pool, affordable, cost, budget, false)
	single := bestSingle(pool, affordable)

	best := rate
	for _, cand := range [][]graph.NodeID{plain, single} {
		if pool.CoverageCount(cand) > pool.CoverageCount(best) {
			best = cand
		}
	}
	return finalize(pool, best), nil
}

// budgetedGreedy grows a seed set under the budget. When byRate is set
// the pick maximizes marginal coverage per unit cost (with the
// tie-break marginal as a secondary signal scaled the same way);
// otherwise it maximizes raw marginal coverage.
func budgetedGreedy(pool *ric.Pool, cands []graph.NodeID, cost CostFunc, budget float64, byRate bool) []graph.NodeID {
	st := pool.NewState()
	used := make(map[graph.NodeID]struct{})
	var seeds []graph.NodeID
	remaining := budget
	for {
		best := graph.NodeID(-1)
		bestScore := -1.0
		bestTie := -1.0
		for _, v := range cands {
			if _, ok := used[v]; ok {
				continue
			}
			c := cost(v)
			if c > remaining {
				continue
			}
			score := float64(coverageGain(pool, st, v))
			tie := tieBreakGain(pool, st, v)
			if byRate {
				score /= c
				tie /= c
			}
			// Strict improvement, or an exact tie broken by tie-score;
			// phrased as ordered comparisons to avoid float equality.
			if score < bestScore {
				continue
			}
			if score > bestScore || tie > bestTie {
				bestScore = score
				bestTie = tie
				best = v
			}
		}
		if best < 0 || (bestScore <= 0 && bestTie <= 0) {
			break
		}
		used[best] = struct{}{}
		seeds = append(seeds, best)
		remaining -= cost(best)
		st.Add(best)
		if remaining <= 0 {
			break
		}
	}
	return seeds
}

// bestSingle returns the affordable node influencing the most samples
// alone — the classic guard against rate greedy spending the budget on
// many cheap, useless nodes.
func bestSingle(pool *ric.Pool, cands []graph.NodeID) []graph.NodeID {
	best := graph.NodeID(-1)
	bestCov := -1
	for _, v := range cands {
		if cov := pool.CoverageCount([]graph.NodeID{v}); cov > bestCov {
			bestCov = cov
			best = v
		}
	}
	if best < 0 {
		return nil
	}
	return []graph.NodeID{best}
}

// TotalCost sums the cost of a seed set under the given pricing.
func TotalCost(seeds []graph.NodeID, cost CostFunc) float64 {
	if cost == nil {
		cost = UniformCost
	}
	total := 0.0
	for _, s := range seeds {
		total += cost(s)
	}
	return total
}
