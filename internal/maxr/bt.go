package maxr

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"

	"imc/internal/graph"
	"imc/internal/ric"
)

// BT is the bounded-threshold solver (paper Alg. 4 and its §IV-C
// extension to thresholds ≤ d). For every candidate root u it restricts
// the pool to the samples u touches, credits u's member coverage, and
// solves the residual instance — greedily when one more member suffices
// (d = 2), recursively otherwise. The root whose seed set influences the
// most of its own touched samples wins. Guarantee: (1−1/e)/k^(d−1).
type BT struct {
	// MaxRoots caps how many candidate roots are examined at every
	// recursion level, taken in descending touch-count order. 0 means
	// all roots — faithful to the paper but O(|V|) subproblems, which
	// the paper itself reports timing out on its largest dataset.
	MaxRoots int
	// Depth is the threshold bound d ≥ 2; 0 defaults to 2 (Alg. 4).
	Depth int
	// Workers parallelizes the top-level root scan (the roots are
	// independent subproblems). 0 means GOMAXPROCS. The result is
	// deterministic regardless of worker count: ties break toward the
	// earlier root in touch-count order.
	Workers int
}

var _ CtxSolver = BT{}

// Name implements Solver.
func (b BT) Name() string { return "BT" }

// Guarantee implements Solver: (1−1/e)/k^(d−1).
func (b BT) Guarantee(_ *ric.Pool, k int) float64 {
	d := b.depth()
	return (1 - 1/math.E) / math.Pow(float64(k), float64(d-1))
}

func (b BT) depth() int {
	if b.Depth < 2 {
		return 2
	}
	return b.Depth
}

// Solve implements Solver.
func (b BT) Solve(pool *ric.Pool, k int) (Result, error) {
	return b.SolveCtx(context.Background(), pool, k)
}

// SolveCtx implements CtxSolver: every worker polls ctx once per root
// subproblem (each root is an independent, typically sizable instance),
// and the recursion checks ctx at each level's root scan. A completed
// run is byte-identical to Solve — workers always fill the same
// per-root result slots, so the poll never perturbs tie-breaking.
//
//imc:longrun
func (b BT) SolveCtx(ctx context.Context, pool *ric.Pool, k int) (Result, error) {
	if err := validate(pool, k); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	covers := pool.SampleCovers()
	roots := b.capRoots(candidates(pool))
	results := make([]rootResult, len(roots))
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(roots) {
		workers = len(roots)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(roots); i += workers {
				if ctx.Err() != nil {
					return
				}
				u := roots[i]
				inst := b.rootInstance(pool, covers, u)
				team := b.solveInstance(ctx, inst, k-1, b.depth()-1)
				results[i] = rootResult{
					seeds: append([]graph.NodeID{u}, team...),
					score: inst.influencedBy(team),
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	bestScore := -1
	var bestSeeds []graph.NodeID
	for _, r := range results {
		if r.score > bestScore {
			bestScore = r.score
			bestSeeds = r.seeds
		}
	}
	return finalize(pool, padSeeds(pool, bestSeeds, k)), nil
}

// rootResult is one root subproblem's slot in the shared result array
// SolveCtx's workers fill in parallel. The bare payload is 32 bytes —
// two slots per cache line — so adjacent workers' stores would bounce
// the line between cores; the pad gives each slot its own line (the
// falseshare contract verifies the 64-byte size).
//
//imc:padded
type rootResult struct {
	seeds []graph.NodeID
	score int
	_     [32]byte
}

func (b BT) capRoots(roots []graph.NodeID) []graph.NodeID {
	if b.MaxRoots > 0 && len(roots) > b.MaxRoots {
		return roots[:b.MaxRoots]
	}
	return roots
}

// instEntry records that a node covers members of one instance sample.
type instEntry struct {
	idx  int32
	bits ric.Mask
}

// btInstance is a restricted MAXR instance: a subset of pool samples
// with pre-credited base coverage (from the root chain above it).
type btInstance struct {
	thresholds []int32
	base       []ric.Mask
	nodes      []graph.NodeID // candidate nodes, sorted by entry count desc
	entries    map[graph.NodeID][]instEntry
}

// rootInstance restricts the pool to the samples u touches, crediting
// u's coverage as the base.
func (b BT) rootInstance(pool *ric.Pool, covers [][]ric.NodeCover, u graph.NodeID) *btInstance {
	es := pool.Entries(u)
	inst := &btInstance{
		thresholds: make([]int32, len(es)),
		base:       make([]ric.Mask, len(es)),
		entries:    make(map[graph.NodeID][]instEntry),
	}
	for i, e := range es {
		inst.thresholds[i] = pool.Sample(int(e.Sample)).Threshold
		inst.base[i] = e.Bits
		for _, nc := range covers[e.Sample] {
			if nc.Node == u {
				continue
			}
			inst.entries[nc.Node] = append(inst.entries[nc.Node], instEntry{idx: int32(i), bits: nc.Bits})
		}
	}
	inst.sortNodes()
	return inst
}

// subInstance restricts inst to the samples that node u covers, folding
// u's coverage into the base.
func (inst *btInstance) subInstance(u graph.NodeID) *btInstance {
	es := inst.entries[u]
	sub := &btInstance{
		thresholds: make([]int32, len(es)),
		base:       make([]ric.Mask, len(es)),
		entries:    make(map[graph.NodeID][]instEntry),
	}
	keep := make(map[int32]int32, len(es))
	for i, e := range es {
		sub.thresholds[i] = inst.thresholds[e.idx]
		merged := e.bits.Clone()
		inst.base[e.idx].OrInto(merged)
		sub.base[i] = merged
		keep[e.idx] = int32(i)
	}
	for v, ves := range inst.entries {
		if v == u {
			continue
		}
		for _, e := range ves {
			if si, ok := keep[e.idx]; ok {
				sub.entries[v] = append(sub.entries[v], instEntry{idx: si, bits: e.bits})
			}
		}
	}
	sub.sortNodes()
	return sub
}

func (inst *btInstance) sortNodes() {
	inst.nodes = make([]graph.NodeID, 0, len(inst.entries))
	for v := range inst.entries {
		inst.nodes = append(inst.nodes, v)
	}
	sort.Slice(inst.nodes, func(i, j int) bool {
		a, b := inst.nodes[i], inst.nodes[j]
		la, lb := len(inst.entries[a]), len(inst.entries[b])
		if la != lb {
			return la > lb
		}
		return a < b
	})
}

// influencedBy counts instance samples influenced by base ∪ seeds.
func (inst *btInstance) influencedBy(seeds []graph.NodeID) int {
	st := inst.newState()
	for _, v := range seeds {
		st.add(inst, v)
	}
	return st.influenced(inst)
}

// solveInstance picks up to k nodes maximizing influenced instance
// samples. depth ≤ 1 runs the greedy base case (exact (1−1/e) when each
// residual threshold is ≤ 1, i.e. original thresholds ≤ 2); deeper
// levels recurse over roots as §IV-C describes. On cancellation it
// returns early with a partial (possibly nil) team; the caller's
// post-wait ctx check discards the whole result, so the short-circuit
// never leaks into a completed run.
func (b BT) solveInstance(ctx context.Context, inst *btInstance, k, depth int) []graph.NodeID {
	if k <= 0 || len(inst.nodes) == 0 {
		return nil
	}
	if depth <= 1 {
		return inst.greedy(k)
	}
	roots := b.capRoots(inst.nodes)
	bestScore := -1
	var best []graph.NodeID
	for _, u := range roots {
		if ctx.Err() != nil {
			return best
		}
		sub := inst.subInstance(u)
		team := b.solveInstance(ctx, sub, k-1, depth-1)
		score := sub.influencedBy(team)
		if score > bestScore {
			bestScore = score
			best = append([]graph.NodeID{u}, team...)
		}
	}
	return best
}

// instState tracks running coverage over an instance during greedy.
type instState struct {
	cover []ric.Mask
	count []int32
}

func (inst *btInstance) newState() *instState {
	st := &instState{
		cover: make([]ric.Mask, len(inst.base)),
		count: make([]int32, len(inst.base)),
	}
	for i, m := range inst.base {
		st.cover[i] = m
		st.count[i] = int32(m.OnesCount())
	}
	return st
}

func (st *instState) add(inst *btInstance, v graph.NodeID) {
	for _, e := range inst.entries[v] {
		merged := e.bits.Clone()
		st.cover[e.idx].OrInto(merged)
		st.cover[e.idx] = merged
		st.count[e.idx] = int32(merged.OnesCount())
	}
}

func (st *instState) gain(inst *btInstance, v graph.NodeID) int {
	g := 0
	for _, e := range inst.entries[v] {
		h := inst.thresholds[e.idx]
		cur := st.count[e.idx]
		if cur >= h {
			continue
		}
		if cur+int32(e.bits.NewBitsOver(st.cover[e.idx])) >= h {
			g++
		}
	}
	return g
}

func (st *instState) influenced(inst *btInstance) int {
	n := 0
	for i, c := range st.count {
		if c >= inst.thresholds[i] {
			n++
		}
	}
	return n
}

// greedy is the base-case selection: plain greedy on influenced count.
// With residual thresholds ≤ 1 the objective is max coverage, so this
// is the (1−1/e) greedy of Theorem 4.
func (inst *btInstance) greedy(k int) []graph.NodeID {
	st := inst.newState()
	used := make(map[graph.NodeID]struct{}, k)
	seeds := make([]graph.NodeID, 0, k)
	for len(seeds) < k {
		best := graph.NodeID(-1)
		bestGain := 0
		for _, v := range inst.nodes {
			if _, ok := used[v]; ok {
				continue
			}
			// nodes are sorted by entry count and gain ≤ entry count,
			// so once the bound drops below the incumbent the scan can
			// stop (exact prune, mirroring GreedyCHat).
			if len(inst.entries[v]) < bestGain {
				break
			}
			if g := st.gain(inst, v); g > bestGain {
				bestGain = g
				best = v
			}
		}
		if best < 0 {
			break
		}
		st.add(inst, best)
		used[best] = struct{}{}
		seeds = append(seeds, best)
	}
	return seeds
}
