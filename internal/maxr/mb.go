package maxr

import (
	"context"
	"math"

	"imc/internal/ric"
)

// MB combines MAF and BT (paper §IV-C "Combining with MAF"): run both,
// keep the seed set influencing more samples. For thresholds ≤ 2 the
// combination achieves Θ(√((1−1/e)/r)), tight to the problem's
// inapproximability under the exponential time hypothesis (Theorem 5).
type MB struct {
	// MAF configures the MAF half.
	MAF MAF
	// BT configures the BT half.
	BT BT
}

var _ CtxSolver = MB{}

// Name implements Solver.
func (MB) Name() string { return "MB" }

// Guarantee implements Solver: √((1−1/e)·⌊k/2⌋ / (k·r)) — Theorem 5's
// bound before the ⌊k/2⌋/k = Θ(1) simplification.
func (m MB) Guarantee(pool *ric.Pool, k int) float64 {
	r := pool.Partition().NumCommunities()
	if r == 0 || k == 0 {
		return 0
	}
	return math.Sqrt((1 - 1/math.E) * float64(k/2) / (float64(k) * float64(r)))
}

// Solve implements Solver.
func (m MB) Solve(pool *ric.Pool, k int) (Result, error) {
	return m.SolveCtx(context.Background(), pool, k)
}

// SolveCtx implements CtxSolver: ctx reaches both halves.
//
//imc:longrun
func (m MB) SolveCtx(ctx context.Context, pool *ric.Pool, k int) (Result, error) {
	if err := validate(pool, k); err != nil {
		return Result{}, err
	}
	rMAF, err := m.MAF.SolveCtx(ctx, pool, k)
	if err != nil {
		return Result{}, err
	}
	rBT, err := m.BT.SolveCtx(ctx, pool, k)
	if err != nil {
		return Result{}, err
	}
	if rBT.Coverage > rMAF.Coverage {
		return rBT, nil
	}
	return rMAF, nil
}
