package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.CI95() != 0 {
		t.Fatal("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("n = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g, want 5", r.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("variance = %g, want %g", r.Variance(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %g/%g", r.Min(), r.Max())
	}
	if r.CI95() <= 0 {
		t.Fatal("CI95 should be positive for n ≥ 2")
	}
}

func TestSummaryString(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(3)
	s := r.Summarize()
	if s.N != 2 || s.Mean != 2 {
		t.Fatalf("summary %+v", s)
	}
	if !strings.Contains(s.String(), "n=2") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-0.5, 1}, {1.5, 5},
	}
	for _, c := range cases {
		if got := Percentile(data, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("P%.2f = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
	if Percentile([]float64{7}, 0.9) != 7 {
		t.Fatal("singleton percentile")
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("interpolated = %g, want 2.5", got)
	}
	// Input unchanged.
	if data[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if g := GeometricMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean = %g", g)
	}
	if GeometricMean([]float64{-1, 0}) != 0 {
		t.Fatal("geomean of non-positive data")
	}
	// Non-positive entries skipped.
	if g := GeometricMean([]float64{0, 4}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean skipping zero = %g", g)
	}
}

// Property: Welford's mean/variance match the two-pass formulas.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var r Running
		data := make([]float64, len(raw))
		for i, v := range raw {
			data[i] = float64(v)
			r.Add(data[i])
		}
		mean := Mean(data)
		ss := 0.0
		for _, x := range data {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(data)-1)
		return math.Abs(r.Mean()-mean) < 1e-6 && math.Abs(r.Variance()-variance) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		data := make([]float64, len(raw))
		for i, v := range raw {
			data[i] = float64(v)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(data, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return Percentile(data, 0) <= Percentile(data, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
