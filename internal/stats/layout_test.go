//go:build amd64

package stats

import "unsafe"

// Compile-time layout pin (gc/amd64): Running is //imc:compact — five
// words, 40 bytes, no padding. The constant index compiles only when
// the size is exactly 40, so a field addition or reorder fails the
// build here instead of silently growing every per-estimator
// accumulator.
var _ = [1]struct{}{}[unsafe.Sizeof(Running{})-40]
