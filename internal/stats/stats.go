// Package stats provides the small statistical toolkit the experiment
// harness uses to report averaged results: streaming moments (Welford),
// normal-approximation confidence intervals, and percentile summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming mean and variance via Welford's
// algorithm. The zero value is ready to use. Aggregations hold one
// accumulator per tracked series, and all five fields are one word
// wide, so the layout is pinned waste-free (40 bytes).
//
//imc:compact
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 with no observations).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 with no observations).
func (r *Running) Max() float64 { return r.max }

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval of the mean.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.StdDev() / math.Sqrt(float64(r.n))
}

// Summary is a frozen snapshot of a Running accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	CI95   float64
}

// Summarize freezes the accumulator.
func (r *Running) Summarize() Summary {
	return Summary{
		N:      r.n,
		Mean:   r.Mean(),
		StdDev: r.StdDev(),
		Min:    r.min,
		Max:    r.max,
		CI95:   r.CI95(),
	}
}

// String renders "mean ± ci95 (n=…)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.CI95, s.N)
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of the data using
// linear interpolation; the input slice is not modified.
func Percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of data (0 for empty input).
func Mean(data []float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range data {
		sum += x
	}
	return sum / float64(len(data))
}

// GeometricMean returns the geometric mean of positive data; entries
// ≤ 0 are skipped (0 if none remain).
func GeometricMean(data []float64) float64 {
	logSum, n := 0.0, 0
	for _, x := range data {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
