package stats

import (
	"math"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum %g", h.Sum())
	}
	snap := h.Snapshot()
	// Cumulative: ≤1 holds {0.5, 1}, ≤2 adds {1.5}, ≤4 adds {3};
	// 100 overflows.
	want := []int64{2, 3, 4}
	for i, b := range snap.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket le=%g count %d, want %d", b.Le, b.Count, want[i])
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report 0")
	}
	// 1000 observations uniform on (0, 1): quantiles should roughly
	// match the underlying values despite bucketing.
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 0.5, 0.15},
		{0.95, 0.95, 0.1},
		{0.99, 0.99, 0.05},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Fatalf("q%g = %g, want ≈ %g", tc.q, got, tc.want)
		}
	}
	// Monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(50)
	h.Observe(60)
	// Everything is in the overflow bucket: the histogram can only
	// report its last finite bound.
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile %g, want 2", got)
	}
	snap := h.Snapshot()
	if snap.Count != 2 || snap.Buckets[len(snap.Buckets)-1].Count != 0 {
		t.Fatalf("snapshot %+v", snap)
	}
}
