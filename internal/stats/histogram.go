package stats

import "sort"

// Histogram is a fixed-bound bucketing accumulator in the Prometheus
// style: counts are kept per upper bound, plus a total count and sum,
// so p50/p95/p99 are derivable from a snapshot without retaining the
// raw observations. The zero value is unusable — construct with
// NewHistogram or NewLatencyHistogram.
//
// Histogram is not safe for concurrent use; callers that share one
// across goroutines guard it with their own mutex (matching Running).
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds
	counts []int64   // one per bound, plus the +Inf overflow at the end
	count  int64
	sum    float64
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds. Observations above the last bound land in an implicit
// +Inf overflow bucket.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// latencyBounds spans 1 ms to ~2 min in roughly-doubling steps — wide
// enough that both a cached /solve hit and a multi-doubling job run
// land inside the graduated range.
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
	0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// NewLatencyHistogram returns a histogram with log-spaced bounds in
// seconds suited to request and job durations.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(latencyBounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Quantile returns an estimate of the q-quantile (q in [0, 1]) by
// linear interpolation inside the bucket the rank falls in. Values in
// the overflow bucket report the last finite bound — the histogram
// cannot see past its own range. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := int64(0)
	for i, c := range h.counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// Bucket is one cumulative histogram bucket: the count of observations
// ≤ Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is an immutable copy of a histogram's state, in
// cumulative form plus derived quantiles — ready to serialize into a
// metrics reply.
type HistogramSnapshot struct {
	Buckets []Bucket `json:"buckets"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
}

// Snapshot captures the histogram's current state. The overflow bucket
// is omitted from Buckets (its count is Count minus the last bucket's).
func (h *Histogram) Snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Buckets: make([]Bucket, len(h.bounds)),
		Count:   h.count,
		Sum:     h.sum,
		P50:     h.Quantile(0.50),
		P95:     h.Quantile(0.95),
		P99:     h.Quantile(0.99),
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		out.Buckets[i] = Bucket{Le: b, Count: cum}
	}
	return out
}
