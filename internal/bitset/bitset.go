// Package bitset provides a compact, allocation-conscious dynamic bitset.
//
// It is the workhorse behind RIC-sample coverage bookkeeping: every RIC
// sample tracks, per candidate seed node, which members of the source
// community that node can reach. Those member sets are small (bounded by
// the community size cap), so a dense word-packed bitset is both the
// fastest and the smallest representation.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset over [0, Len()). The zero value is an
// empty set of capacity zero; use New to size it.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len reports the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set turns bit i on. Out-of-range indices are ignored.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear turns bit i off. Out-of-range indices are ignored.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is on.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Reset clears every bit, keeping capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Union sets s = s ∪ other. Sets must have equal capacity.
func (s *Set) Union(other *Set) {
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// UnionCount returns |s ∪ other| without mutating either set.
func (s *Set) UnionCount(other *Set) int {
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] | other.words[i])
	}
	return c
}

// NewlyCovered returns the number of bits set in other but not in s,
// i.e. the marginal contribution of other on top of s.
func (s *Set) NewlyCovered(other *Set) int {
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(other.words[i] &^ s.words[i])
	}
	return c
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// Equal reports whether both sets have identical capacity and contents.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Ones returns the indices of all set bits in ascending order.
func (s *Set) Ones() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the set as {i, j, ...} for debugging.
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, b := range s.Ones() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", b)
	}
	sb.WriteByte('}')
	return sb.String()
}
