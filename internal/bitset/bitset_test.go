package bitset

import (
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Count() != 0 || s.Any() {
		t.Fatalf("empty set misbehaves: len=%d count=%d any=%v", s.Len(), s.Count(), s.Any())
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count after clear = %d, want 7", got)
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Set(-1)
	s.Set(10)
	s.Set(100)
	if s.Any() {
		t.Fatal("out-of-range Set mutated the set")
	}
	if s.Test(-1) || s.Test(10) {
		t.Fatal("out-of-range Test returned true")
	}
}

func TestUnionAndCounts(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(0)
	a.Set(69)
	b.Set(69)
	b.Set(33)
	if got := a.UnionCount(b); got != 3 {
		t.Fatalf("UnionCount = %d, want 3", got)
	}
	if got := a.NewlyCovered(b); got != 1 {
		t.Fatalf("NewlyCovered = %d, want 1 (bit 33)", got)
	}
	a.Union(b)
	if got := a.Count(); got != 3 {
		t.Fatalf("Count after Union = %d, want 3", got)
	}
	if !a.Test(33) {
		t.Fatal("Union did not import bit 33")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(10)
	a.Set(3)
	c := a.Clone()
	c.Set(5)
	if a.Test(5) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Test(3) {
		t.Fatal("clone lost original bit")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestOnesAndString(t *testing.T) {
	s := New(100)
	s.Set(2)
	s.Set(64)
	s.Set(99)
	ones := s.Ones()
	want := []int{2, 64, 99}
	if len(ones) != len(want) {
		t.Fatalf("Ones = %v, want %v", ones, want)
	}
	for i := range want {
		if ones[i] != want[i] {
			t.Fatalf("Ones = %v, want %v", ones, want)
		}
	}
	if got := s.String(); got != "{2, 64, 99}" {
		t.Fatalf("String = %q", got)
	}
}

func TestReset(t *testing.T) {
	s := New(128)
	for i := 0; i < 128; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
	if s.Len() != 128 {
		t.Fatal("Reset changed capacity")
	}
}

// Property: Count equals the number of distinct indices set.
func TestQuickCountMatchesDistinctSets(t *testing.T) {
	f := func(idx []uint16) bool {
		s := New(1 << 16)
		distinct := make(map[uint16]struct{})
		for _, i := range idx {
			s.Set(int(i))
			distinct[i] = struct{}{}
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative in count and NewlyCovered decomposes
// the union: |a ∪ b| = |a| + newly(a←b).
func TestQuickUnionAlgebra(t *testing.T) {
	build := func(idx []uint8) *Set {
		s := New(256)
		for _, i := range idx {
			s.Set(int(i))
		}
		return s
	}
	f := func(x, y []uint8) bool {
		a, b := build(x), build(y)
		if a.UnionCount(b) != b.UnionCount(a) {
			return false
		}
		return a.UnionCount(b) == a.Count()+a.NewlyCovered(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Ones round-trips through Set.
func TestQuickOnesRoundTrip(t *testing.T) {
	f := func(idx []uint8) bool {
		s := New(256)
		for _, i := range idx {
			s.Set(int(i))
		}
		back := New(256)
		for _, i := range s.Ones() {
			back.Set(i)
		}
		return s.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
