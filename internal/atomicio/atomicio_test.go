package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("read %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

// TestWriteStreamFailureKeepsOldContent: a failed write must leave the
// previously published file untouched and clean up its temp file —
// the whole point of tmp-and-rename.
func TestWriteStreamFailureKeepsOldContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFile(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteStream(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial new")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("published file clobbered by failed write: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("failed write left its temp file")
	}
}

func TestCRCFrameRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteCRCStream(path, func(w io.Writer) error {
		_, err := w.Write([]byte("framed"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	body, err := ReadCRCFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "framed" {
		t.Fatalf("body %q", body)
	}
	// On-disk size = payload + 4-byte tail.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(len("framed"))+4 {
		t.Fatalf("file size %d", info.Size())
	}
}

func TestCRCDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteCRCStream(path, func(w io.Writer) error {
		_, err := w.Write([]byte("framed payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off++ {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if _, err := VerifyCRCFrame(bad); !errors.Is(err, ErrCRCMismatch) {
			t.Fatalf("flip at %d: err = %v, want ErrCRCMismatch", off, err)
		}
	}
	for _, short := range [][]byte{nil, {1}, {1, 2, 3}} {
		if _, err := VerifyCRCFrame(short); !errors.Is(err, ErrCRCMismatch) {
			t.Fatalf("%d bytes: err = %v, want ErrCRCMismatch", len(short), err)
		}
	}
	// An empty payload is a valid frame.
	empty := filepath.Join(t.TempDir(), "e")
	if err := WriteCRCStream(empty, func(io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	body, err := ReadCRCFile(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 0 {
		t.Fatalf("empty frame body %q", body)
	}
}
