// Package atomicio provides the crash-safe file publication primitives
// shared by the durable subsystems (the async job store, the pool
// cache): write-to-temp + fsync + rename publication, so readers never
// observe a partial file, and CRC-framed payloads, so silent disk
// corruption surfaces as a descriptive decode error instead of subtly
// wrong state.
package atomicio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrCRCMismatch reports that a CRC-framed file's checksum does not
// cover its payload — the file is corrupt and must not be trusted.
var ErrCRCMismatch = errors.New("atomicio: crc mismatch")

// WriteFile atomically writes data to path via a synced temp file and
// rename, so readers never observe a partial file.
func WriteFile(path string, data []byte) error {
	return WriteStream(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteStream streams fn's output to path atomically: the bytes go to
// path+".tmp", the file is synced, and only then renamed over path —
// a crash mid-write leaves the previous content intact. On any error
// the temp file is removed.
func WriteStream(path string, fn func(io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("atomicio: create %s: %w", filepath.Base(tmp), err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = fn(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", filepath.Base(tmp), err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", filepath.Base(tmp), err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicio: publish %s: %w", filepath.Base(path), err)
	}
	return nil
}

// WriteCRCStream is WriteStream with integrity framing: everything fn
// writes is checksummed (IEEE CRC-32) and the 4-byte little-endian sum
// is appended after the payload. ReadCRCFile verifies and strips it.
func WriteCRCStream(path string, fn func(io.Writer) error) error {
	return WriteStream(path, func(w io.Writer) error {
		sum := crc32.NewIEEE()
		if err := fn(io.MultiWriter(w, sum)); err != nil {
			return err
		}
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], sum.Sum32())
		_, err := w.Write(tail[:])
		return err
	})
}

// ReadCRCFile reads a file written by WriteCRCStream, verifies the
// trailing checksum, and returns the payload without it. A mismatch
// (or a file too short to carry the frame) returns an error wrapping
// ErrCRCMismatch.
func ReadCRCFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	body, err := VerifyCRCFrame(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return body, nil
}

// VerifyCRCFrame checks the trailing CRC-32 of an in-memory CRC-framed
// payload and returns the body without the 4-byte tail. Callers that
// need custom pre-checks (magic, minimum length) before trusting the
// checksum read the file themselves and verify the frame here.
func VerifyCRCFrame(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("atomicio: %d bytes, too short for a crc frame: %w",
			len(data), ErrCRCMismatch)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("atomicio: crc %08x, want %08x: %w", got, want, ErrCRCMismatch)
	}
	return body, nil
}
