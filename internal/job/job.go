// Package job is the durable async execution substrate between the
// solvers and the HTTP surface: a disk-backed job store plus a bounded
// worker pool that runs solves asynchronously with checkpoint/resume.
//
// The serve layer's synchronous endpoints shed anything that cannot
// finish inside one request deadline — but the paper's hard instances
// (IMC is inapproximable within O(r^{1/2(loglog r)^c}), and RIC sample
// counts grow steeply with k and r) are exactly the ones that blow
// past any deadline. Jobs decouple submission from execution: a solve
// is submitted once (idempotently), executed by a worker, periodically
// checkpointed at pool-growth boundaries, and — because RIC sample i
// is always drawn from PRNG stream i of the job's seed — a killed or
// restarted process resumes every in-flight job from its last
// checkpoint and produces the byte-identical seed set an uninterrupted
// run would have.
//
// Store layout under the job directory:
//
//	journal.log      append-only JSONL of submissions and transitions
//	<id>.ckpt        latest checkpoint (atomic rename, IMCK codec)
//	<id>.result.json terminal result (atomic rename)
package job

import (
	"fmt"
	"strings"
	"time"

	"imc/internal/diffusion"
	"imc/internal/expt"
)

// State is a job's lifecycle phase. Transitions:
//
//	pending → running → succeeded | failed | canceled
//	running → pending        (interruption: drain or crash; resumes++)
//	pending → canceled       (cancel before a worker picks it up)
type State string

const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Spec is the immutable description of one solve job — the async twin
// of the serve layer's /solve request.
type Spec struct {
	// Instance selection (see expt.InstanceConfig).
	Dataset   string  `json:"dataset"`
	Scale     float64 `json:"scale"`
	Formation string  `json:"formation,omitempty"` // "louvain" (default) | "random"
	SizeCap   int     `json:"sizeCap,omitempty"`
	Bounded   bool    `json:"bounded,omitempty"`
	Seed      uint64  `json:"seed"`

	// Solve parameters.
	Alg        string  `json:"alg"` // UBG (default) | MAF | MB | HBC | KS | IM | UBG+LS | DD
	K          int     `json:"k"`
	Eps        float64 `json:"eps,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	MaxSamples int     `json:"maxSamples,omitempty"`
	BTMaxRoots int     `json:"btMaxRoots,omitempty"`
	Model      string  `json:"model,omitempty"` // "ic" (default) | "lt"
}

// knownAlgs is the algorithm whitelist, validated at submission so a
// typo fails fast instead of after queueing.
var knownAlgs = func() map[string]bool {
	m := make(map[string]bool, len(expt.AllAlgorithms)+2)
	for _, a := range expt.AllAlgorithms {
		m[a] = true
	}
	m[expt.AlgUBGLS] = true
	m[expt.AlgDD] = true
	return m
}()

// Normalize fills defaults and canonicalizes the algorithm name so
// that equal submissions hash to equal specs.
func (s Spec) Normalize() Spec {
	if s.Dataset == "" {
		s.Dataset = "facebook"
	}
	if s.Scale == 0 {
		s.Scale = 0.1
	}
	s.Alg = strings.ToUpper(s.Alg)
	if s.Alg == "" {
		s.Alg = expt.AlgUBG
	}
	s.Model = strings.ToLower(s.Model)
	return s
}

// Validate rejects specs that could never run. Call on the normalized
// form.
func (s Spec) Validate() error {
	if s.K < 1 {
		return fmt.Errorf("job: k must be ≥ 1, got %d", s.K)
	}
	if !knownAlgs[s.Alg] {
		return fmt.Errorf("job: unknown algorithm %q (valid: %v)", s.Alg, expt.AllAlgorithms)
	}
	switch s.Model {
	case "", "ic", "lt":
	default:
		return fmt.Errorf("job: unknown model %q (valid: ic, lt)", s.Model)
	}
	if s.Scale <= 0 || s.Scale > 1 {
		return fmt.Errorf("job: scale %g out of (0, 1]", s.Scale)
	}
	return nil
}

// model maps the spec's model name to the diffusion constant.
func (s Spec) model() diffusion.Model {
	if s.Model == "lt" {
		return diffusion.LT
	}
	return diffusion.IC
}

// InstanceConfig returns the expt instance configuration the spec
// selects.
func (s Spec) InstanceConfig() expt.InstanceConfig {
	formation := expt.Louvain
	if strings.EqualFold(s.Formation, "random") {
		formation = expt.RandomFormation
	}
	return expt.InstanceConfig{
		Dataset:   s.Dataset,
		Scale:     s.Scale,
		Formation: formation,
		SizeCap:   s.SizeCap,
		Bounded:   s.Bounded,
		Seed:      s.Seed,
	}
}

// Result is a succeeded job's output — the async twin of the serve
// layer's /solve reply.
type Result struct {
	Instance     string  `json:"instance"`
	Alg          string  `json:"alg"`
	Seeds        []int32 `json:"seeds"`
	Benefit      float64 `json:"benefit"`
	TotalBenefit float64 `json:"totalBenefit"`
	ElapsedMS    int64   `json:"elapsedMs"`
}

// CheckpointInfo describes a job's latest durable checkpoint.
type CheckpointInfo struct {
	// Doublings is the stop-and-stare round the checkpoint was taken at.
	Doublings int `json:"doublings"`
	// Samples is the pool size at the checkpoint.
	Samples int `json:"samples"`
}

// Job is one queued, running, or finished solve. Store methods return
// copies — mutating a Job does not touch store state.
type Job struct {
	ID    string `json:"id"`
	Key   string `json:"key,omitempty"` // idempotency key, "" if none
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Resumes counts how many times the job went back to pending after
	// an interruption (drain or crash).
	Resumes    int             `json:"resumes,omitempty"`
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"`

	SubmittedAt time.Time `json:"submittedAt"`
	StartedAt   time.Time `json:"startedAt,omitempty"`
	FinishedAt  time.Time `json:"finishedAt,omitempty"`
}

// clone returns a deep copy (Checkpoint is the only pointer field).
func (j *Job) clone() *Job {
	out := *j
	if j.Checkpoint != nil {
		cp := *j.Checkpoint
		out.Checkpoint = &cp
	}
	return &out
}
