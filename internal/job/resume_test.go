package job

import (
	"testing"
	"time"

	"imc/internal/core"
)

// TestInterruptedJobResumesByteIdentical is the subsystem's contract
// test: a job interrupted mid-solve (after its first durable
// checkpoint) and re-run by a fresh store + pool — a simulated process
// restart — must produce exactly the result an uninterrupted run
// produces: same seeds in the same order, same benefit. This works
// because RIC sample i is always drawn from PRNG stream i of the job
// seed, so the resumed pool retraces the uninterrupted one sample for
// sample.
func TestInterruptedJobResumesByteIdentical(t *testing.T) {
	spec := testSpec(41)

	// Baseline: the same spec run start-to-finish with no interruption.
	baseStore := openTestStore(t, t.TempDir())
	baseJob, _, err := baseStore.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	basePool := newTestPool(t, baseStore)
	basePool.Start()
	if j := waitTerminal(t, baseStore, baseJob.ID); j.State != StateSucceeded {
		t.Fatalf("baseline state %s (%s)", j.State, j.Error)
	}
	baseline, err := baseStore.Result(baseJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	shutdownPool(t, basePool)

	// Interrupted run: the first durable checkpoint "kills the process" —
	// the hook cancels the pool's base context, so the worker classifies
	// the run as interrupted and the job returns to pending.
	dir := t.TempDir()
	s1 := openTestStore(t, dir)
	j1, _, err := s1.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	p1 := newTestPool(t, s1)
	fired := false
	p1.checkpointHook = func(string, core.Checkpoint) {
		if fired {
			return
		}
		fired = true
		p1.baseCancel()
	}
	p1.Start()

	deadline := time.Now().Add(60 * time.Second)
	for {
		j, err := s1.Get(j1.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == StatePending && j.Resumes == 1 {
			if j.Checkpoint == nil || j.Checkpoint.Samples < 1 {
				t.Fatalf("interrupted without a durable checkpoint: %+v", j.Checkpoint)
			}
			break
		}
		if j.State.Terminal() {
			t.Fatalf("job finished as %s instead of being interrupted", j.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never interrupted: %+v", j)
		}
		time.Sleep(5 * time.Millisecond)
	}
	shutdownPool(t, p1)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh store and pool over the same directory. Resume-on-
	// boot enqueues the pending job; the worker restores the checkpoint
	// and finishes the solve.
	s2 := openTestStore(t, dir)
	p2 := newTestPool(t, s2)
	p2.Start()
	defer shutdownPool(t, p2)

	done := waitTerminal(t, s2, j1.ID)
	if done.State != StateSucceeded {
		t.Fatalf("resumed state %s (%s)", done.State, done.Error)
	}
	if done.Resumes != 1 {
		t.Fatalf("resumes %d, want 1", done.Resumes)
	}
	resumed, err := s2.Result(j1.ID)
	if err != nil {
		t.Fatal(err)
	}

	if len(resumed.Seeds) != len(baseline.Seeds) {
		t.Fatalf("seed count %d vs baseline %d", len(resumed.Seeds), len(baseline.Seeds))
	}
	for i := range resumed.Seeds {
		if resumed.Seeds[i] != baseline.Seeds[i] {
			t.Fatalf("seed[%d] = %d, baseline %d — resume diverged", i, resumed.Seeds[i], baseline.Seeds[i])
		}
	}
	if resumed.Benefit != baseline.Benefit {
		t.Fatalf("benefit %v vs baseline %v — resume diverged", resumed.Benefit, baseline.Benefit)
	}
	if resumed.TotalBenefit != baseline.TotalBenefit || resumed.Instance != baseline.Instance || resumed.Alg != baseline.Alg {
		t.Fatalf("result metadata drifted: %+v vs %+v", resumed, baseline)
	}
}
