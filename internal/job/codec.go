package job

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"imc/internal/atomicio"
	"imc/internal/core"
)

// Checkpoint file codec. One job checkpoint is a single file so the
// write can be made atomic with one rename:
//
//	magic     [4]byte  "IMCK"
//	version   uint32   (1)
//	doublings uint32   stop-and-stare round counter
//	specLen   uint32   length of the canonical spec JSON
//	spec      specLen bytes (the job's normalized Spec, for validation)
//	pool      ric pool stream (Pool.Save format), to 4 bytes before EOF
//	crc32     uint32   IEEE checksum of everything before it
//
// The embedded spec lets recovery refuse a checkpoint that belongs to
// a different job than the directory entry claims (e.g. after a manual
// file shuffle); the trailing CRC turns silent disk corruption into a
// descriptive decode error instead of a subtly wrong pool.

var ckptMagic = [4]byte{'I', 'M', 'C', 'K'}

const (
	ckptVersion    = 1
	ckptHeaderSize = 4 + 4 + 4 + 4 // magic, version, doublings, specLen
	ckptMaxSpec    = 1 << 20
)

// writeCheckpointFile atomically persists one checkpoint through the
// shared CRC-framed atomic write machinery (internal/atomicio): header,
// spec, and pool stream to a synced temp file with a trailing CRC,
// renamed over path, so a crash mid-write leaves the previous
// checkpoint intact.
func writeCheckpointFile(path string, spec Spec, cp core.Checkpoint) error {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("job: marshal checkpoint spec: %w", err)
	}
	return atomicio.WriteCRCStream(path, func(w io.Writer) error {
		var hdr [ckptHeaderSize]byte
		copy(hdr[:4], ckptMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:8], ckptVersion)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(cp.Doublings))
		binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(specJSON)))
		if _, err := w.Write(hdr[:]); err != nil {
			return fmt.Errorf("job: write checkpoint header: %w", err)
		}
		if _, err := w.Write(specJSON); err != nil {
			return fmt.Errorf("job: write checkpoint spec: %w", err)
		}
		if err := cp.Pool.Save(w); err != nil {
			return fmt.Errorf("job: write checkpoint pool: %w", err)
		}
		return nil
	})
}

// decodedCheckpoint is the raw content of a checkpoint file; the pool
// bytes still need ric.Pool.ReadInto over the job's instance.
type decodedCheckpoint struct {
	spec      Spec
	doublings int
	poolBytes []byte
}

// errNoCheckpoint reports that a job has no checkpoint on disk — a
// normal condition (the job never reached its first boundary).
var errNoCheckpoint = errors.New("job: no checkpoint")

// readCheckpointFile loads and validates one checkpoint file. Every
// failure mode gets its own message: truncation, bad magic, version
// drift, CRC mismatch, and spec corruption are different operational
// problems.
func readCheckpointFile(path string) (*decodedCheckpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, errNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("job: read checkpoint %s: %w", filepath.Base(path), err)
	}
	if len(data) < ckptHeaderSize+4 {
		return nil, fmt.Errorf("job: checkpoint %s truncated: %d bytes, want at least %d",
			filepath.Base(path), len(data), ckptHeaderSize+4)
	}
	if !bytes.Equal(data[:4], ckptMagic[:]) {
		return nil, fmt.Errorf("job: checkpoint %s has bad magic %q", filepath.Base(path), data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != ckptVersion {
		return nil, fmt.Errorf("job: checkpoint %s version %d unsupported (want %d)", filepath.Base(path), v, ckptVersion)
	}
	body, err := atomicio.VerifyCRCFrame(data)
	if err != nil {
		return nil, fmt.Errorf("job: checkpoint %s corrupt: %w", filepath.Base(path), err)
	}
	doublings := binary.LittleEndian.Uint32(data[8:12])
	specLen := binary.LittleEndian.Uint32(data[12:16])
	if specLen > ckptMaxSpec || ckptHeaderSize+int(specLen) > len(body) {
		return nil, fmt.Errorf("job: checkpoint %s spec length %d exceeds file", filepath.Base(path), specLen)
	}
	var spec Spec
	if err := json.Unmarshal(body[ckptHeaderSize:ckptHeaderSize+int(specLen)], &spec); err != nil {
		return nil, fmt.Errorf("job: checkpoint %s spec corrupt: %w", filepath.Base(path), err)
	}
	return &decodedCheckpoint{
		spec:      spec,
		doublings: int(doublings),
		poolBytes: body[ckptHeaderSize+int(specLen):],
	}, nil
}
