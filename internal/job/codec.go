package job

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"imc/internal/core"
)

// Checkpoint file codec. One job checkpoint is a single file so the
// write can be made atomic with one rename:
//
//	magic     [4]byte  "IMCK"
//	version   uint32   (1)
//	doublings uint32   stop-and-stare round counter
//	specLen   uint32   length of the canonical spec JSON
//	spec      specLen bytes (the job's normalized Spec, for validation)
//	pool      ric pool stream (Pool.Save format), to 4 bytes before EOF
//	crc32     uint32   IEEE checksum of everything before it
//
// The embedded spec lets recovery refuse a checkpoint that belongs to
// a different job than the directory entry claims (e.g. after a manual
// file shuffle); the trailing CRC turns silent disk corruption into a
// descriptive decode error instead of a subtly wrong pool.

var ckptMagic = [4]byte{'I', 'M', 'C', 'K'}

const (
	ckptVersion    = 1
	ckptHeaderSize = 4 + 4 + 4 + 4 // magic, version, doublings, specLen
	ckptMaxSpec    = 1 << 20
)

// writeCheckpointFile atomically persists one checkpoint: the bytes are
// streamed to path+".tmp" (through the CRC), synced, and renamed over
// path, so a crash mid-write leaves the previous checkpoint intact.
func writeCheckpointFile(path string, spec Spec, cp core.Checkpoint) (err error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("job: marshal checkpoint spec: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("job: create checkpoint temp: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	sum := crc32.NewIEEE()
	w := io.MultiWriter(f, sum)
	var hdr [ckptHeaderSize]byte
	copy(hdr[:4], ckptMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], ckptVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(cp.Doublings))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(specJSON)))
	if _, err = w.Write(hdr[:]); err != nil {
		return fmt.Errorf("job: write checkpoint header: %w", err)
	}
	if _, err = w.Write(specJSON); err != nil {
		return fmt.Errorf("job: write checkpoint spec: %w", err)
	}
	if err = cp.Pool.Save(w); err != nil {
		return fmt.Errorf("job: write checkpoint pool: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum.Sum32())
	if _, err = f.Write(tail[:]); err != nil {
		return fmt.Errorf("job: write checkpoint crc: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("job: sync checkpoint: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("job: close checkpoint: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("job: publish checkpoint: %w", err)
	}
	return nil
}

// decodedCheckpoint is the raw content of a checkpoint file; the pool
// bytes still need ric.Pool.ReadInto over the job's instance.
type decodedCheckpoint struct {
	spec      Spec
	doublings int
	poolBytes []byte
}

// errNoCheckpoint reports that a job has no checkpoint on disk — a
// normal condition (the job never reached its first boundary).
var errNoCheckpoint = errors.New("job: no checkpoint")

// readCheckpointFile loads and validates one checkpoint file. Every
// failure mode gets its own message: truncation, bad magic, version
// drift, CRC mismatch, and spec corruption are different operational
// problems.
func readCheckpointFile(path string) (*decodedCheckpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, errNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("job: read checkpoint %s: %w", filepath.Base(path), err)
	}
	if len(data) < ckptHeaderSize+4 {
		return nil, fmt.Errorf("job: checkpoint %s truncated: %d bytes, want at least %d",
			filepath.Base(path), len(data), ckptHeaderSize+4)
	}
	if !bytes.Equal(data[:4], ckptMagic[:]) {
		return nil, fmt.Errorf("job: checkpoint %s has bad magic %q", filepath.Base(path), data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != ckptVersion {
		return nil, fmt.Errorf("job: checkpoint %s version %d unsupported (want %d)", filepath.Base(path), v, ckptVersion)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("job: checkpoint %s corrupt: crc %08x, want %08x", filepath.Base(path), got, want)
	}
	doublings := binary.LittleEndian.Uint32(data[8:12])
	specLen := binary.LittleEndian.Uint32(data[12:16])
	if specLen > ckptMaxSpec || ckptHeaderSize+int(specLen) > len(body) {
		return nil, fmt.Errorf("job: checkpoint %s spec length %d exceeds file", filepath.Base(path), specLen)
	}
	var spec Spec
	if err := json.Unmarshal(body[ckptHeaderSize:ckptHeaderSize+int(specLen)], &spec); err != nil {
		return nil, fmt.Errorf("job: checkpoint %s spec corrupt: %w", filepath.Base(path), err)
	}
	return &decodedCheckpoint{
		spec:      spec,
		doublings: int(doublings),
		poolBytes: body[ckptHeaderSize+int(specLen):],
	}, nil
}
