package job

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// The journal is an append-only JSONL ledger: replaying it from the top
// reconstructs the owning component's current state, so records are
// never rewritten in place — a crash can at worst leave one torn line
// at the tail, which replay detects and truncates away before appending
// resumes. The Store uses one for job metadata; the distributed shard
// runtime (internal/shard) uses one as its exactly-once generation
// ledger. Both get the same durability contract from the exported
// Journal/ReplayJournal/OpenJournalAt surface.
//
// Large blobs (pool checkpoints, results, shard exports) live in side
// files and are written via atomic rename; a journal only records that
// they exist.

// journalOp enumerates the Store's record types.
const (
	opSubmit     = "submit"
	opState      = "state"
	opCheckpoint = "checkpoint"
)

// journalRecord is one Store JSONL line. Fields beyond Op/ID/At apply
// only to some ops.
type journalRecord struct {
	Op string    `json:"op"`
	ID string    `json:"id"`
	At time.Time `json:"at"`

	// opSubmit
	Key  string `json:"key,omitempty"`
	Spec *Spec  `json:"spec,omitempty"`

	// opState
	State   State  `json:"state,omitempty"`
	Error   string `json:"error,omitempty"`
	Resumes int    `json:"resumes,omitempty"`

	// opCheckpoint
	Doublings int `json:"doublings,omitempty"`
	Samples   int `json:"samples,omitempty"`
}

// Journal is the append handle, split into two halves so an owner
// never fsyncs inside its own mutex (the lockheld analyzer's canonical
// stall: every read would queue behind disk latency):
//
//   - Stage() runs under the owner's mutex: it marshals the record into
//     the pending buffer and issues a ticket. Buffer order therefore
//     matches the order state changes were applied, which is what
//     replay depends on.
//   - Commit(ticket) runs AFTER the owner's mutex is released: it swaps
//     the pending buffer out and pays for write+flush+fsync under the
//     journal's own writer lock. A commit that finds its ticket
//     already synced piggybacks on an earlier caller's fsync — under
//     contention the journal group-commits many records per sync.
//
// Durability semantics for callers: a mutation returns only after its
// record is on disk. What changes on failure: the in-memory transition
// has already been published when Commit fails, so the caller gets the
// error while memory runs ahead of disk. The sticky werr then fails
// every later mutation, freezing the owner until restart — at which
// point replay rewinds to the last synced record and interrupted work
// resumes from its side files.
type Journal struct {
	// Staging half, guarded by smu (taken with the owner's mutex held;
	// always innermost, so the lock-order graph stays acyclic).
	smu     sync.Mutex
	pending []byte //imc:guardedby smu
	staged  uint64 //imc:guardedby smu — tickets issued

	// Writer half, guarded by mu — deliberately held across the fsync
	// so concurrent commits batch behind one sync.
	mu     sync.Mutex
	file   *os.File      //imc:guardedby mu
	bw     *bufio.Writer //imc:guardedby mu
	synced uint64        //imc:guardedby mu — tickets durably on disk
	werr   error         //imc:guardedby mu — sticky write/sync failure
}

// ReplayJournal reads every intact JSONL record from path, reporting
// the byte offset where intact data ends. A missing file is an empty
// journal. apply receives each line's raw JSON and reports whether the
// record is well-formed for the owner's schema: returning false stops
// replay at the previous record — the line, and everything after it,
// is treated as the torn/corrupt tail of a crash mid-append, which the
// caller truncates away via OpenJournalAt. An apply error aborts the
// replay outright (the journal is intact but the state is
// contradictory, e.g. a transition for an unknown ID).
func ReplayJournal(path string, apply func(line json.RawMessage) (bool, error)) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("job: open journal: %w", err)
	}
	defer f.Close()

	var good int64
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// A final line without a newline is a torn append: ignore it.
			return good, nil
		}
		if err != nil {
			return 0, fmt.Errorf("job: read journal: %w", err)
		}
		if !json.Valid(line) {
			// Corrupt interior line: everything after it is suspect too,
			// so stop here and let the caller truncate.
			return good, nil
		}
		ok, aerr := apply(json.RawMessage(line))
		if aerr != nil {
			return 0, fmt.Errorf("job: replay journal: %w", aerr)
		}
		if !ok {
			return good, nil
		}
		good += int64(len(line))
	}
}

// replayJournal replays the Store's schema: a line that does not decode
// to a record with an op and an ID is corruption, not a variant.
func replayJournal(path string, apply func(journalRecord) error) (int64, error) {
	return ReplayJournal(path, func(line json.RawMessage) (bool, error) {
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Op == "" || rec.ID == "" {
			return false, nil
		}
		return true, apply(rec)
	})
}

// OpenJournalAt opens path for appending, truncated to intactBytes (the
// offset ReplayJournal reported) so torn tails never corrupt later
// records.
func OpenJournalAt(path string, intactBytes int64) (*Journal, error) {
	if err := os.Truncate(path, intactBytes); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("job: truncate journal tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("job: open journal for append: %w", err)
	}
	return &Journal{file: f, bw: bufio.NewWriter(f)}, nil
}

// Stage marshals one record into the pending buffer and returns its
// commit ticket. Callers stage under their own mutex (so buffer order
// matches in-memory apply order) and pass the ticket to Commit after
// releasing it. A marshal failure stages nothing — the caller can still
// roll back its in-memory change.
func (j *Journal) Stage(rec any) (uint64, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("job: marshal journal record: %w", err)
	}
	j.smu.Lock()
	defer j.smu.Unlock()
	j.pending = append(j.pending, raw...)
	j.pending = append(j.pending, '\n')
	j.staged++
	return j.staged, nil
}

// Commit makes every record up to ticket durable. The fast path — a
// concurrent commit already synced past the ticket — returns without
// touching the file. Record rates are nowhere near fsync throughput,
// and a lost record means work silently re-runs or vanishes on restart,
// so the journal always pays for durability; the group-commit batching
// just makes contenders share one payment.
func (j *Journal) Commit(ticket uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.werr != nil {
		return j.werr
	}
	if j.synced >= ticket {
		return nil
	}
	j.smu.Lock()
	buf := j.pending
	top := j.staged
	j.pending = nil
	j.smu.Unlock()
	if len(buf) > 0 {
		//lint:allow lockheld: the writer mutex exists to serialize exactly this fsync; holding it across the sync is how commits batch, and nothing else ever waits on it except other commits
		if err := j.flushAndSync(buf); err != nil {
			j.werr = err
			return err
		}
	}
	j.synced = top
	return nil
}

// flushAndSync pushes buf through the buffered writer to the kernel
// and fsyncs. Called with j.mu held.
//
//imc:locked mu
func (j *Journal) flushAndSync(buf []byte) error {
	if _, err := j.bw.Write(buf); err != nil {
		return fmt.Errorf("job: append journal: %w", err)
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("job: flush journal: %w", err)
	}
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("job: sync journal: %w", err)
	}
	return nil
}

// Append stages and immediately commits one record — the single-
// threaded path (boot-time replay demotions), where there is nothing
// to batch with.
func (j *Journal) Append(rec any) error {
	ticket, err := j.Stage(rec)
	if err != nil {
		return err
	}
	return j.Commit(ticket)
}

// Close flushes anything still staged and releases the file handle.
// Single-caller contract: no commits may be in flight.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.smu.Lock()
	top := j.staged
	j.smu.Unlock()
	cerr := j.Commit(top)
	j.mu.Lock()
	f := j.file
	j.file = nil
	j.mu.Unlock()
	if f == nil {
		return cerr
	}
	if ferr := f.Close(); cerr == nil && ferr != nil {
		return fmt.Errorf("job: close journal: %w", ferr)
	}
	return cerr
}
