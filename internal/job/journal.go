package job

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// The journal is the store's single source of truth for job metadata:
// an append-only JSONL file of submissions and state transitions.
// Replaying it from the top reconstructs every job's current state, so
// the store never rewrites records in place — a crash can at worst
// leave one torn line at the tail, which replay detects and truncates
// away before appending resumes.
//
// Large blobs (pool checkpoints, results) live in side files named by
// job ID and are written via atomic rename; the journal only records
// that they exist.

// journalOp enumerates record types.
const (
	opSubmit     = "submit"
	opState      = "state"
	opCheckpoint = "checkpoint"
)

// journalRecord is one JSONL line. Fields beyond Op/ID/At apply only
// to some ops.
type journalRecord struct {
	Op string    `json:"op"`
	ID string    `json:"id"`
	At time.Time `json:"at"`

	// opSubmit
	Key  string `json:"key,omitempty"`
	Spec *Spec  `json:"spec,omitempty"`

	// opState
	State   State  `json:"state,omitempty"`
	Error   string `json:"error,omitempty"`
	Resumes int    `json:"resumes,omitempty"`

	// opCheckpoint
	Doublings int `json:"doublings,omitempty"`
	Samples   int `json:"samples,omitempty"`
}

// journal is the append handle, split into two halves so the store
// never fsyncs inside its own mutex (the lockheld analyzer's canonical
// stall: every Get/List would queue behind disk latency):
//
//   - stage() runs under Store.mu: it marshals the record into the
//     pending buffer and issues a ticket. Buffer order therefore
//     matches the order state changes were applied, which is what
//     replay depends on.
//   - commit(ticket) runs AFTER Store.mu is released: it swaps the
//     pending buffer out and pays for write+flush+fsync under the
//     journal's own writer lock. A commit that finds its ticket
//     already synced piggybacks on an earlier caller's fsync — under
//     contention the journal group-commits many records per sync.
//
// Durability semantics are unchanged for callers: a method returns
// only after its record is on disk. What changes on failure: the
// in-memory transition has already been published when commit fails,
// so the caller gets the error while memory runs ahead of disk. The
// sticky werr then fails every later mutation, freezing the store
// until restart — at which point replay rewinds to the last synced
// record and the interrupted jobs resume from checkpoints.
type journal struct {
	// Staging half, guarded by smu (taken with Store.mu held; always
	// innermost, so the lock-order graph stays acyclic).
	smu     sync.Mutex
	pending []byte //imc:guardedby smu
	staged  uint64 //imc:guardedby smu — tickets issued

	// Writer half, guarded by mu — deliberately held across the fsync
	// so concurrent commits batch behind one sync.
	mu     sync.Mutex
	file   *os.File      //imc:guardedby mu
	bw     *bufio.Writer //imc:guardedby mu
	synced uint64        //imc:guardedby mu — tickets durably on disk
	werr   error         //imc:guardedby mu — sticky write/sync failure
}

// replayJournal reads every intact record from path, reporting the
// byte offset where intact data ends. A missing file is an empty
// journal. A torn or corrupt tail — the signature of a crash mid-append
// — stops replay; the caller truncates to the returned offset before
// appending.
func replayJournal(path string, apply func(journalRecord) error) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("job: open journal: %w", err)
	}
	defer f.Close()

	var good int64
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// A final line without a newline is a torn append: ignore it.
			return good, nil
		}
		if err != nil {
			return 0, fmt.Errorf("job: read journal: %w", err)
		}
		var rec journalRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Op == "" || rec.ID == "" {
			// Corrupt interior line: everything after it is suspect too,
			// so stop here and let the caller truncate.
			return good, nil
		}
		if aerr := apply(rec); aerr != nil {
			return 0, fmt.Errorf("job: replay journal: %w", aerr)
		}
		good += int64(len(line))
	}
}

// openJournal opens path for appending, truncated to intactBytes (the
// offset replayJournal reported) so torn tails never corrupt later
// records.
func openJournal(path string, intactBytes int64) (*journal, error) {
	if err := os.Truncate(path, intactBytes); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("job: truncate journal tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("job: open journal for append: %w", err)
	}
	return &journal{file: f, bw: bufio.NewWriter(f)}, nil
}

// stage marshals one record into the pending buffer and returns its
// commit ticket. Callers stage under Store.mu (so buffer order matches
// in-memory apply order) and pass the ticket to commit after releasing
// it. A marshal failure stages nothing — the caller can still roll
// back its in-memory change.
func (j *journal) stage(rec journalRecord) (uint64, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("job: marshal journal record: %w", err)
	}
	j.smu.Lock()
	defer j.smu.Unlock()
	j.pending = append(j.pending, raw...)
	j.pending = append(j.pending, '\n')
	j.staged++
	return j.staged, nil
}

// commit makes every record up to ticket durable. The fast path — a
// concurrent commit already synced past the ticket — returns without
// touching the file. Job submission rates are nowhere near fsync
// throughput, and a lost transition means a job silently re-runs or
// vanishes on restart, so the journal always pays for durability; the
// group-commit batching just makes contenders share one payment.
func (j *journal) commit(ticket uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.werr != nil {
		return j.werr
	}
	if j.synced >= ticket {
		return nil
	}
	j.smu.Lock()
	buf := j.pending
	top := j.staged
	j.pending = nil
	j.smu.Unlock()
	if len(buf) > 0 {
		//lint:allow lockheld: the writer mutex exists to serialize exactly this fsync; holding it across the sync is how commits batch, and nothing else ever waits on it except other commits
		if err := j.flushAndSync(buf); err != nil {
			j.werr = err
			return err
		}
	}
	j.synced = top
	return nil
}

// flushAndSync pushes buf through the buffered writer to the kernel
// and fsyncs. Called with j.mu held.
//
//imc:locked mu
func (j *journal) flushAndSync(buf []byte) error {
	if _, err := j.bw.Write(buf); err != nil {
		return fmt.Errorf("job: append journal: %w", err)
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("job: flush journal: %w", err)
	}
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("job: sync journal: %w", err)
	}
	return nil
}

// append stages and immediately commits one record — the single-
// threaded path (Open's replay demotions), where there is nothing to
// batch with.
func (j *journal) append(rec journalRecord) error {
	ticket, err := j.stage(rec)
	if err != nil {
		return err
	}
	return j.commit(ticket)
}

// close flushes anything still staged and releases the file handle.
// Single-caller contract (Store.Close): no commits may be in flight.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	j.smu.Lock()
	top := j.staged
	j.smu.Unlock()
	cerr := j.commit(top)
	j.mu.Lock()
	f := j.file
	j.file = nil
	j.mu.Unlock()
	if f == nil {
		return cerr
	}
	if ferr := f.Close(); cerr == nil && ferr != nil {
		return fmt.Errorf("job: close journal: %w", ferr)
	}
	return cerr
}
