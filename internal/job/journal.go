package job

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// The journal is the store's single source of truth for job metadata:
// an append-only JSONL file of submissions and state transitions.
// Replaying it from the top reconstructs every job's current state, so
// the store never rewrites records in place — a crash can at worst
// leave one torn line at the tail, which replay detects and truncates
// away before appending resumes.
//
// Large blobs (pool checkpoints, results) live in side files named by
// job ID and are written via atomic rename; the journal only records
// that they exist.

// journalOp enumerates record types.
const (
	opSubmit     = "submit"
	opState      = "state"
	opCheckpoint = "checkpoint"
)

// journalRecord is one JSONL line. Fields beyond Op/ID/At apply only
// to some ops.
type journalRecord struct {
	Op string    `json:"op"`
	ID string    `json:"id"`
	At time.Time `json:"at"`

	// opSubmit
	Key  string `json:"key,omitempty"`
	Spec *Spec  `json:"spec,omitempty"`

	// opState
	State   State  `json:"state,omitempty"`
	Error   string `json:"error,omitempty"`
	Resumes int    `json:"resumes,omitempty"`

	// opCheckpoint
	Doublings int `json:"doublings,omitempty"`
	Samples   int `json:"samples,omitempty"`
}

// journal wraps the append handle. Not safe for concurrent use; the
// store serializes access under its own mutex.
type journal struct {
	file *os.File
	bw   *bufio.Writer
}

// replayJournal reads every intact record from path, reporting the
// byte offset where intact data ends. A missing file is an empty
// journal. A torn or corrupt tail — the signature of a crash mid-append
// — stops replay; the caller truncates to the returned offset before
// appending.
func replayJournal(path string, apply func(journalRecord) error) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("job: open journal: %w", err)
	}
	defer f.Close()

	var good int64
	br := bufio.NewReaderSize(f, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// A final line without a newline is a torn append: ignore it.
			return good, nil
		}
		if err != nil {
			return 0, fmt.Errorf("job: read journal: %w", err)
		}
		var rec journalRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil || rec.Op == "" || rec.ID == "" {
			// Corrupt interior line: everything after it is suspect too,
			// so stop here and let the caller truncate.
			return good, nil
		}
		if aerr := apply(rec); aerr != nil {
			return 0, fmt.Errorf("job: replay journal: %w", aerr)
		}
		good += int64(len(line))
	}
}

// openJournal opens path for appending, truncated to intactBytes (the
// offset replayJournal reported) so torn tails never corrupt later
// records.
func openJournal(path string, intactBytes int64) (*journal, error) {
	if err := os.Truncate(path, intactBytes); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("job: truncate journal tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("job: open journal for append: %w", err)
	}
	return &journal{file: f, bw: bufio.NewWriter(f)}, nil
}

// append writes one record durably: marshal, write, flush, fsync. Job
// submission rates are nowhere near fsync throughput, and a lost
// transition means a job silently re-runs or vanishes on restart, so
// the journal always pays for durability.
func (j *journal) append(rec journalRecord) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("job: marshal journal record: %w", err)
	}
	raw = append(raw, '\n')
	if _, err := j.bw.Write(raw); err != nil {
		return fmt.Errorf("job: append journal: %w", err)
	}
	if err := j.bw.Flush(); err != nil {
		return fmt.Errorf("job: flush journal: %w", err)
	}
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("job: sync journal: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	if j == nil || j.file == nil {
		return nil
	}
	if err := j.bw.Flush(); err != nil {
		j.file.Close()
		return fmt.Errorf("job: flush journal on close: %w", err)
	}
	return j.file.Close()
}
