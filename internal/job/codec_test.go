package job

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imc/internal/community"
	"imc/internal/core"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/ric"
)

// testTopology builds the small random graph + partition the job tests
// solve on. Keyed by seed so distinct tests get distinct instances.
func testTopology(t *testing.T, seed uint64) (*graph.Graph, *community.Partition) {
	t.Helper()
	g, err := gen.RandomDirected(30, 100, 0.4, seed)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(30, 6, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

func testPool(t *testing.T, seed uint64, samples int) *ric.Pool {
	t.Helper()
	g, part := testTopology(t, seed)
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(samples); err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	pool := testPool(t, 5, 64)
	spec := Spec{Dataset: "test", K: 3, Seed: 5}.Normalize()
	path := filepath.Join(t.TempDir(), "j1.ckpt")

	cp := core.Checkpoint{Pool: pool, Doublings: 4}
	if err := writeCheckpointFile(path, spec, cp); err != nil {
		t.Fatal(err)
	}
	dec, err := readCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dec.doublings != 4 {
		t.Fatalf("doublings %d, want 4", dec.doublings)
	}
	wantSpec, _ := json.Marshal(spec)
	gotSpec, _ := json.Marshal(dec.spec)
	if !bytes.Equal(wantSpec, gotSpec) {
		t.Fatalf("spec drifted: %s vs %s", gotSpec, wantSpec)
	}
	var poolBytes bytes.Buffer
	if err := pool.Save(&poolBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.poolBytes, poolBytes.Bytes()) {
		t.Fatal("pool bytes drifted through the codec")
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file not cleaned up: %v", err)
	}
}

func TestReadCheckpointMissing(t *testing.T) {
	_, err := readCheckpointFile(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, errNoCheckpoint) {
		t.Fatalf("want errNoCheckpoint, got %v", err)
	}
}

func TestReadCheckpointRejectsCorrupt(t *testing.T) {
	pool := testPool(t, 6, 32)
	spec := Spec{Dataset: "test", K: 2, Seed: 6}.Normalize()
	dir := t.TempDir()
	path := filepath.Join(dir, "j1.ckpt")
	if err := writeCheckpointFile(path, spec, core.Checkpoint{Pool: pool, Doublings: 1}); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"bad version", func(b []byte) []byte { b[4] = 99; return b }, "version"},
		{"flipped pool byte", func(b []byte) []byte { b[len(b)-20] ^= 0x41; return b }, "crc"},
		{"flipped crc", func(b []byte) []byte { b[len(b)-1] ^= 0x41; return b }, "crc"},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-9] }, "crc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(append([]byte(nil), valid...))
			p := filepath.Join(dir, "mut.ckpt")
			if err := os.WriteFile(p, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := readCheckpointFile(p)
			if err == nil {
				t.Fatal("corrupt checkpoint accepted")
			}
			if errors.Is(err, errNoCheckpoint) {
				t.Fatalf("corruption misreported as missing: %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestReadCheckpointNoPanicOnAnyTruncation(t *testing.T) {
	pool := testPool(t, 7, 16)
	spec := Spec{Dataset: "test", K: 2, Seed: 7}.Normalize()
	dir := t.TempDir()
	path := filepath.Join(dir, "j1.ckpt")
	if err := writeCheckpointFile(path, spec, core.Checkpoint{Pool: pool, Doublings: 0}); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "cut.ckpt")
	for cut := 0; cut < len(valid); cut++ {
		if err := os.WriteFile(p, valid[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readCheckpointFile(p); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
