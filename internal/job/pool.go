package job

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"

	"imc/internal/clock"
	"imc/internal/core"
	"imc/internal/expt"
	"imc/internal/poolcache"
	"imc/internal/stats"
)

// PoolOptions configures a worker pool.
type PoolOptions struct {
	// Workers is the number of concurrent job runners (default 2).
	Workers int
	// Now supplies timestamps; nil means the wall clock.
	Now clock.Func
	// Log receives worker lifecycle events; nil means slog.Default().
	Log *slog.Logger
	// BuildInstance overrides instance construction (tests inject small
	// instances); nil means expt.BuildInstance.
	BuildInstance func(expt.InstanceConfig) (*expt.Instance, error)
	// PoolCache, when set, shares RIC pool snapshots across jobs: a
	// job whose (instance, model, seed) identity matches a cached pool
	// adopts its samples instead of regenerating them, and checkpoint
	// boundaries store grown pools back. Nil disables cache use.
	PoolCache *poolcache.Cache
}

// Pool executes the store's pending jobs on a bounded set of workers.
// Each running solve checkpoints at every pool-growth boundary, so
// Shutdown (or a crash) loses at most the work since the last
// boundary; interrupted jobs return to pending and resume from their
// checkpoint on the next Start.
type Pool struct {
	store   *Store                                            //imc:guardedby immutable
	workers int                                               //imc:guardedby immutable
	now     clock.Func                                        //imc:guardedby immutable
	log     *slog.Logger                                      //imc:guardedby immutable
	build   func(expt.InstanceConfig) (*expt.Instance, error) //imc:guardedby immutable
	cache   *poolcache.Cache                                  //imc:guardedby immutable — nil disables

	baseCtx    context.Context    //imc:guardedby immutable
	baseCancel context.CancelFunc //imc:guardedby immutable
	wg         sync.WaitGroup

	mu        sync.Mutex
	cond      *sync.Cond            //imc:guardedby immutable — set once in NewPool
	queue     []string              //imc:guardedby mu
	queued    map[string]bool       //imc:guardedby mu
	running   map[string]*runHandle //imc:guardedby mu
	draining  bool                  //imc:guardedby mu
	started   bool                  //imc:guardedby mu
	durations *stats.Histogram      //imc:guardedby mu — completed-run durations, seconds

	// checkpointHook, when set before Start, observes every durable
	// checkpoint. Tests use it to interrupt a solve at a deterministic
	// boundary (the crash/resume integration test). Deliberately
	// unannotated: the set-before-Start contract, not a lock, orders it.
	checkpointHook func(id string, cp core.Checkpoint)
}

// runHandle tracks one in-flight job's cancellation.
type runHandle struct {
	cancel     context.CancelFunc
	userCancel bool
}

// NewPool builds a pool over store. Call Start to begin executing.
func NewPool(store *Store, opts PoolOptions) *Pool {
	if opts.Workers < 1 {
		opts.Workers = 2
	}
	if opts.Log == nil {
		opts.Log = slog.Default()
	}
	if opts.BuildInstance == nil {
		opts.BuildInstance = expt.BuildInstance
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		store:      store,
		workers:    opts.Workers,
		now:        clock.OrWall(opts.Now),
		log:        opts.Log,
		build:      opts.BuildInstance,
		cache:      opts.PoolCache,
		baseCtx:    ctx,
		baseCancel: cancel,
		queued:     make(map[string]bool),
		running:    make(map[string]*runHandle),
		durations:  stats.NewLatencyHistogram(),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Start enqueues every pending job already in the store (resume-on-
// boot) and launches the workers. Start may be called once.
func (p *Pool) Start() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	for _, id := range p.store.PendingIDs() {
		p.enqueueLocked(id)
	}
	p.mu.Unlock()
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
}

// Enqueue hands a pending job to the workers.
func (p *Pool) Enqueue(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.enqueueLocked(id)
}

//imc:locked mu
func (p *Pool) enqueueLocked(id string) {
	if p.queued[id] || p.running[id] != nil || p.draining {
		return
	}
	p.queue = append(p.queue, id)
	p.queued[id] = true
	p.cond.Signal()
}

// Cancel stops a job: a pending job is canceled immediately, a running
// one has its context canceled and finishes as canceled within one
// solver batch. Canceling a terminal job is a no-op reporting false.
func (p *Pool) Cancel(id string) (bool, error) {
	p.mu.Lock()
	if h := p.running[id]; h != nil {
		h.userCancel = true
		h.cancel()
		p.mu.Unlock()
		return true, nil
	}
	p.mu.Unlock()

	err := p.store.CancelPending(id)
	if err == nil {
		p.mu.Lock()
		delete(p.queued, id)
		for i, qid := range p.queue {
			if qid == id {
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
		return true, nil
	}
	if errors.Is(err, ErrNotFound) {
		return false, err
	}
	// Not pending and not running: terminal already.
	return false, nil
}

// Shutdown drains the pool: intake stops, idle workers exit, and
// running solves are interrupted at their next kernel batch. Each
// interrupted job's latest checkpoint is already durable, so it goes
// back to pending and will resume on the next boot. Blocks until all
// workers exited or ctx expires.
//
//imc:longrun
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	p.draining = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.baseCancel()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("job: shutdown: %w", ctx.Err())
	}
}

// PoolStats is a point-in-time view of the pool for /metrics.
type PoolStats struct {
	QueueDepth int
	Running    int
	States     map[State]int
	// RunSeconds is the completed-run duration histogram (successes,
	// failures, and cancellations alike — anything that occupied a
	// worker).
	RunSeconds stats.HistogramSnapshot
}

// Stats snapshots queue depth, in-flight count, per-state job counts,
// and the run-duration histogram.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	depth := len(p.queue)
	running := len(p.running)
	snap := p.durations.Snapshot()
	p.mu.Unlock()
	return PoolStats{
		QueueDepth: depth,
		Running:    running,
		States:     p.store.StateCounts(),
		RunSeconds: snap,
	}
}

// worker is one runner goroutine: pop, claim, execute, classify.
func (p *Pool) worker(n int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.draining {
			p.cond.Wait()
		}
		if p.draining {
			p.mu.Unlock()
			return
		}
		id := p.queue[0]
		p.queue = p.queue[1:]
		delete(p.queued, id)
		p.mu.Unlock()

		j, err := p.store.MarkRunning(id)
		if err != nil {
			// Canceled (or otherwise moved on) between enqueue and claim.
			p.log.Info("job skipped", "job", id, "err", err)
			continue
		}
		ctx, cancel := context.WithCancel(p.baseCtx)
		p.mu.Lock()
		h := &runHandle{cancel: cancel}
		p.running[id] = h
		p.mu.Unlock()

		start := p.now()
		res, runErr := p.runJob(ctx, j)
		elapsed := p.now().Sub(start)
		interrupted := ctx.Err() != nil // read before cancel() taints it
		cancel()

		p.mu.Lock()
		userCancel := h.userCancel
		delete(p.running, id)
		p.durations.Observe(elapsed.Seconds())
		p.mu.Unlock()

		p.finish(id, n, res, runErr, interrupted, userCancel)
	}
}

// finish classifies one run's outcome and records the transition.
// interrupted reports whether the job's context was canceled before the
// run returned (drain or client cancel, per userCancel).
func (p *Pool) finish(id string, worker int, res Result, runErr error, interrupted, userCancel bool) {
	switch {
	case runErr == nil:
		if err := p.store.MarkSucceeded(id, res); err != nil {
			p.log.Error("job result not persisted", "job", id, "err", err)
			return
		}
		p.log.Info("job succeeded", "job", id, "worker", worker, "benefit", res.Benefit)
	case interrupted && userCancel:
		if err := p.store.MarkCanceled(id); err != nil {
			p.log.Error("job cancel not persisted", "job", id, "err", err)
		}
		p.log.Info("job canceled", "job", id, "worker", worker)
	case interrupted:
		// Drain: back to pending with the checkpoint still on disk.
		if err := p.store.MarkInterrupted(id); err != nil {
			p.log.Error("job interrupt not persisted", "job", id, "err", err)
		}
		p.log.Info("job interrupted for resume", "job", id, "worker", worker)
	default:
		if err := p.store.MarkFailed(id, runErr.Error()); err != nil {
			p.log.Error("job failure not persisted", "job", id, "err", err)
		}
		p.log.Info("job failed", "job", id, "worker", worker, "err", runErr)
	}
}

// runJob executes one claimed job: build the instance, restore the
// latest checkpoint if one exists, and run the algorithm with
// checkpointing wired to the store.
//
//imc:longrun
func (p *Pool) runJob(ctx context.Context, j *Job) (Result, error) {
	inst, err := p.build(j.Spec.InstanceConfig())
	if err != nil {
		return Result{}, fmt.Errorf("build instance: %w", err)
	}

	resume, err := p.store.LoadCheckpoint(j.ID, inst)
	if errors.Is(err, errNoCheckpoint) {
		resume = nil
	} else if err != nil {
		// A corrupt or mismatched checkpoint must not wedge the job
		// forever: drop it and restart the solve from scratch.
		p.log.Warn("job checkpoint unusable, restarting solve", "job", j.ID, "err", err)
		if derr := p.store.DropCheckpoint(j.ID); derr != nil {
			return Result{}, derr
		}
		resume = nil
	}

	// One cache session per run (nil-safe when no cache is wired): the
	// solver adopts cached samples through Grow, and each checkpoint
	// boundary stores the grown pool back. The durable job checkpoint
	// is written first and its errors still abort the solve — the
	// shared cache is an accelerator, never part of the durability
	// contract, so its failures are only logged.
	sess := p.cache.Begin(inst.G, inst.Part, j.Spec.model(), j.Spec.Seed)
	cfg := expt.RunConfig{
		Eps:        j.Spec.Eps,
		Delta:      j.Spec.Delta,
		Seed:       j.Spec.Seed,
		Runs:       1,
		MaxSamples: j.Spec.MaxSamples,
		BTMaxRoots: j.Spec.BTMaxRoots,
		Model:      j.Spec.model(),
		Now:        p.now,
		Grow:       sess.Grow,
		Checkpoint: func(cp core.Checkpoint) error {
			if err := p.store.SaveCheckpoint(j.ID, cp); err != nil {
				return err
			}
			if err := sess.Save(cp.Pool); err != nil {
				p.log.Warn("pool cache save failed", "job", j.ID, "err", err)
			}
			if hook := p.checkpointHook; hook != nil {
				hook(j.ID, cp)
			}
			return nil
		},
		Resume: resume,
	}
	start := p.now()
	res, err := expt.RunAlgCtx(ctx, inst, j.Spec.Alg, j.Spec.K, cfg)
	if err != nil {
		return Result{}, err
	}
	seeds := make([]int32, len(res.Seeds))
	copy(seeds, res.Seeds)
	return Result{
		Instance:     inst.Name,
		Alg:          j.Spec.Alg,
		Seeds:        seeds,
		Benefit:      res.Benefit,
		TotalBenefit: inst.Part.TotalBenefit(),
		ElapsedMS:    p.now().Sub(start).Milliseconds(),
	}, nil
}
