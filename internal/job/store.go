package job

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"imc/internal/atomicio"
	"imc/internal/clock"
	"imc/internal/core"
	"imc/internal/expt"
	"imc/internal/ric"
)

// Store is the disk-backed job registry: all metadata flows through
// the append-only journal, large blobs (checkpoints, results) sit in
// per-job side files, and the whole state is rebuilt by replay on Open.
// All methods are safe for concurrent use.
type Store struct {
	dir string     //imc:guardedby immutable
	now clock.Func //imc:guardedby immutable

	mu    sync.Mutex
	jl    *Journal          //imc:guardedby mu
	jobs  map[string]*Job   //imc:guardedby mu
	order []string          //imc:guardedby mu — job IDs in submission order
	byKey map[string]string //imc:guardedby mu — idempotency key → job ID
	seq   int               //imc:guardedby mu
}

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("job: not found")

// Open loads (or initializes) a store in dir. Jobs that were running
// when the previous process died are returned to pending with their
// resume counter bumped — their latest checkpoint is still on disk, so
// the next worker to pick them up continues where they stopped. now
// supplies timestamps (nil means the wall clock).
func Open(dir string, now clock.Func) (*Store, error) {
	if dir == "" {
		return nil, errors.New("job: store directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: create store dir: %w", err)
	}
	s := &Store{
		dir:   dir,
		now:   clock.OrWall(now),
		jobs:  make(map[string]*Job),
		byKey: make(map[string]string),
	}
	path := s.journalPath()
	intact, err := replayJournal(path, s.apply)
	if err != nil {
		return nil, err
	}
	if s.jl, err = OpenJournalAt(path, intact); err != nil {
		return nil, err
	}
	// Crash recovery: a "running" job's worker no longer exists. Journal
	// the demotion so the next replay agrees.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != StateRunning {
			continue
		}
		j.State = StatePending
		j.Resumes++
		if err := s.jl.Append(journalRecord{
			Op: opState, ID: id, At: s.now(), State: StatePending, Resumes: j.Resumes,
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// apply folds one journal record into the in-memory state during
// replay, before the store is visible to any other goroutine.
//
//imc:prepublish
func (s *Store) apply(rec journalRecord) error {
	switch rec.Op {
	case opSubmit:
		if rec.Spec == nil {
			return fmt.Errorf("submit record %s has no spec", rec.ID)
		}
		if _, ok := s.jobs[rec.ID]; ok {
			return fmt.Errorf("duplicate submit for %s", rec.ID)
		}
		j := &Job{ID: rec.ID, Key: rec.Key, Spec: *rec.Spec, State: StatePending, SubmittedAt: rec.At}
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
		if rec.Key != "" {
			s.byKey[rec.Key] = rec.ID
		}
		s.seq++
	case opState:
		j, ok := s.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("state record for unknown job %s", rec.ID)
		}
		j.State = rec.State
		j.Error = rec.Error
		if rec.Resumes > j.Resumes {
			j.Resumes = rec.Resumes
		}
		switch rec.State {
		case StateRunning:
			j.StartedAt = rec.At
		case StateSucceeded, StateFailed, StateCanceled:
			j.FinishedAt = rec.At
		}
	case opCheckpoint:
		j, ok := s.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("checkpoint record for unknown job %s", rec.ID)
		}
		j.Checkpoint = &CheckpointInfo{Doublings: rec.Doublings, Samples: rec.Samples}
	default:
		return fmt.Errorf("unknown journal op %q", rec.Op)
	}
	return nil
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, "journal.log") }
func (s *Store) checkpointPath(id string) string {
	return filepath.Join(s.dir, id+".ckpt")
}
func (s *Store) resultPath(id string) string {
	return filepath.Join(s.dir, id+".result.json")
}

// Submit registers a job. When key is non-empty and a job with the
// same key already exists, that job is returned with created=false —
// the submission is idempotent and the spec of the original wins.
func (s *Store) Submit(spec Spec, key string) (*Job, bool, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	if key != "" {
		if id, ok := s.byKey[key]; ok {
			out := s.jobs[id].clone()
			s.mu.Unlock()
			return out, false, nil
		}
	}
	s.seq++
	j := &Job{
		ID:          fmt.Sprintf("j%08d", s.seq),
		Key:         key,
		Spec:        spec,
		State:       StatePending,
		SubmittedAt: s.now(),
	}
	ticket, err := s.jl.Stage(journalRecord{
		Op: opSubmit, ID: j.ID, At: j.SubmittedAt, Key: key, Spec: &spec,
	})
	if err != nil {
		s.seq--
		s.mu.Unlock()
		return nil, false, err
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if key != "" {
		s.byKey[key] = j.ID
	}
	out := j.clone()
	jl := s.jl
	s.mu.Unlock()
	// Durability outside the lock: concurrent submissions group-commit
	// behind one fsync instead of serializing reads behind the disk.
	if err := jl.Commit(ticket); err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// Get returns a copy of the job, or ErrNotFound.
func (s *Store) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.clone(), nil
}

// List returns copies of every job in submission order.
func (s *Store) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].clone())
	}
	return out
}

// PendingIDs returns the IDs of pending jobs in submission order — the
// pool's intake on boot (resume-on-boot) and the queue's refill source.
func (s *Store) PendingIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.order))
	for _, id := range s.order {
		if s.jobs[id].State == StatePending {
			out = append(out, id)
		}
	}
	return out
}

// StateCounts returns how many jobs sit in each state.
func (s *Store) StateCounts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[State]int, 5)
	for _, id := range s.order {
		out[s.jobs[id].State]++
	}
	return out
}

// transition validates and applies a state change under the lock,
// staging the journal record inside it and committing outside — the
// caller observes the old durable contract (no return before fsync)
// without other store calls queueing behind the disk.
func (s *Store) transition(id string, from, to State, errMsg string, bumpResumes bool) (*Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.State != from {
		state := j.State
		s.mu.Unlock()
		return nil, fmt.Errorf("job: %s is %s, not %s", id, state, from)
	}
	resumes := j.Resumes
	if bumpResumes {
		resumes++
	}
	at := s.now()
	ticket, err := s.jl.Stage(journalRecord{
		Op: opState, ID: id, At: at, State: to, Error: errMsg, Resumes: resumes,
	})
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	j.State = to
	j.Error = errMsg
	j.Resumes = resumes
	switch to {
	case StateRunning:
		j.StartedAt = at
	case StateSucceeded, StateFailed, StateCanceled:
		j.FinishedAt = at
	}
	out := j.clone()
	jl := s.jl
	s.mu.Unlock()
	if err := jl.Commit(ticket); err != nil {
		return nil, err
	}
	return out, nil
}

// MarkRunning claims a pending job for a worker.
func (s *Store) MarkRunning(id string) (*Job, error) {
	return s.transition(id, StatePending, StateRunning, "", false)
}

// MarkFailed finishes a running job with an error.
func (s *Store) MarkFailed(id string, errMsg string) error {
	_, err := s.transition(id, StateRunning, StateFailed, errMsg, false)
	return err
}

// MarkCanceled finishes a running job as canceled by the client.
func (s *Store) MarkCanceled(id string) error {
	_, err := s.transition(id, StateRunning, StateCanceled, "", false)
	return err
}

// CancelPending cancels a job the workers have not picked up yet.
func (s *Store) CancelPending(id string) error {
	_, err := s.transition(id, StatePending, StateCanceled, "", false)
	return err
}

// MarkInterrupted returns a running job to pending after a drain: its
// checkpoint stays on disk and its resume counter records the
// interruption.
func (s *Store) MarkInterrupted(id string) error {
	_, err := s.transition(id, StateRunning, StatePending, "", true)
	return err
}

// MarkSucceeded persists the result (atomic rename) and then journals
// the terminal transition, in that order: a crash between the two
// re-runs the job, which is safe — results are deterministic — while
// the reverse order could declare success with no result on disk.
func (s *Store) MarkSucceeded(id string, res Result) error {
	raw, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("job: marshal result: %w", err)
	}
	if err := atomicio.WriteFile(s.resultPath(id), raw); err != nil {
		return fmt.Errorf("job: persist result: %w", err)
	}
	_, err = s.transition(id, StateRunning, StateSucceeded, "", false)
	return err
}

// Result loads a succeeded job's result.
func (s *Store) Result(id string) (Result, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state State
	if ok {
		state = j.State
	}
	s.mu.Unlock()
	if !ok {
		return Result{}, ErrNotFound
	}
	if state != StateSucceeded {
		return Result{}, fmt.Errorf("job: %s is %s, result available once succeeded", id, state)
	}
	raw, err := os.ReadFile(s.resultPath(id))
	if err != nil {
		return Result{}, fmt.Errorf("job: read result: %w", err)
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return Result{}, fmt.Errorf("job: decode result: %w", err)
	}
	return res, nil
}

// SaveCheckpoint durably records a solver checkpoint for the job: the
// pool snapshot goes to the side file first (atomic rename), then the
// journal records its existence. Crash between the two leaves a
// checkpoint file slightly newer than the journal entry — harmless,
// since the file itself carries the round counter.
func (s *Store) SaveCheckpoint(id string, cp core.Checkpoint) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var spec Spec
	if ok {
		spec = j.Spec
	}
	s.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	if err := writeCheckpointFile(s.checkpointPath(id), spec, cp); err != nil {
		return err
	}
	s.mu.Lock()
	j, ok = s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	info := &CheckpointInfo{Doublings: cp.Doublings, Samples: cp.Pool.NumSamples()}
	ticket, err := s.jl.Stage(journalRecord{
		Op: opCheckpoint, ID: id, At: s.now(), Doublings: info.Doublings, Samples: info.Samples,
	})
	if err != nil {
		s.mu.Unlock()
		return err
	}
	j.Checkpoint = info
	jl := s.jl
	s.mu.Unlock()
	return jl.Commit(ticket)
}

// LoadCheckpoint restores the job's latest checkpoint against the
// instance it will run on. Returns errNoCheckpoint when the job never
// checkpointed; any other error means the checkpoint exists but cannot
// be trusted (corrupt, truncated, or belonging to a different spec) —
// callers log it and restart the solve from scratch.
func (s *Store) LoadCheckpoint(id string, inst *expt.Instance) (*core.Checkpoint, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var spec Spec
	if ok {
		spec = j.Spec
	}
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	dec, err := readCheckpointFile(s.checkpointPath(id))
	if err != nil {
		return nil, err
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	gotJSON, err := json.Marshal(dec.spec)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(specJSON, gotJSON) {
		return nil, fmt.Errorf("job: checkpoint for %s was taken by a different spec (%s vs %s)", id, gotJSON, specJSON)
	}
	pool, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Model: spec.model(), Seed: spec.Seed})
	if err != nil {
		return nil, fmt.Errorf("job: rebuild checkpoint pool: %w", err)
	}
	if err := pool.ReadInto(bytes.NewReader(dec.poolBytes)); err != nil {
		return nil, fmt.Errorf("job: restore checkpoint pool for %s: %w", id, err)
	}
	return &core.Checkpoint{Pool: pool, Doublings: dec.doublings}, nil
}

// DropCheckpoint removes a job's checkpoint file (used when a stale or
// corrupt checkpoint must not be retried).
func (s *Store) DropCheckpoint(id string) error {
	err := os.Remove(s.checkpointPath(id))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("job: drop checkpoint: %w", err)
	}
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and releases the journal handle. The store must not be
// used after: no method may hold a commit in flight when Close runs.
func (s *Store) Close() error {
	s.mu.Lock()
	jl := s.jl
	s.mu.Unlock()
	return jl.Close()
}
