package job

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"testing"
	"time"

	"imc/internal/community"
	"imc/internal/core"
	"imc/internal/expt"
	"imc/internal/gen"
)

// testBuildInstance is the pool tests' BuildInstance seam: a small
// random instance keyed by the spec seed, so tests never touch the
// dataset registry.
func testBuildInstance(cfg expt.InstanceConfig) (*expt.Instance, error) {
	g, err := gen.RandomDirected(30, 100, 0.4, cfg.Seed)
	if err != nil {
		return nil, err
	}
	part, err := community.Random(30, 6, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return &expt.Instance{Name: "test/random", G: g, Part: part, Config: cfg}, nil
}

func newTestPool(t *testing.T, s *Store) *Pool {
	t.Helper()
	return NewPool(s, PoolOptions{
		Workers:       2,
		Log:           slog.New(slog.NewTextHandler(io.Discard, nil)),
		BuildInstance: testBuildInstance,
	})
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Store, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return nil
}

func shutdownPool(t *testing.T, p *Pool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRunsJobToCompletion(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	j, _, err := s.Submit(testSpec(21), "")
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPool(t, s)
	p.Start()
	defer shutdownPool(t, p)

	done := waitTerminal(t, s, j.ID)
	if done.State != StateSucceeded {
		t.Fatalf("state %s (%s), want succeeded", done.State, done.Error)
	}
	if done.Checkpoint == nil || done.Checkpoint.Samples < 1 {
		t.Fatalf("no checkpoint recorded: %+v", done.Checkpoint)
	}
	res, err := s.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != j.Spec.K || res.Benefit <= 0 || res.TotalBenefit <= 0 {
		t.Fatalf("implausible result %+v", res)
	}
	if res.Instance != "test/random" || res.Alg != expt.AlgUBG {
		t.Fatalf("result labels %q/%q", res.Instance, res.Alg)
	}
	st := p.Stats()
	if st.States[StateSucceeded] != 1 || st.RunSeconds.Count != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolFailsBadJob(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	// K exceeds the 30-node test instance: core rejects it at solve time.
	j, _, err := s.Submit(Spec{Dataset: "test", K: 500, Seed: 4}, "")
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPool(t, s)
	p.Start()
	defer shutdownPool(t, p)

	done := waitTerminal(t, s, j.ID)
	if done.State != StateFailed || done.Error == "" {
		t.Fatalf("state %s (%q), want failed with message", done.State, done.Error)
	}
}

func TestPoolCancelPending(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	j, _, err := s.Submit(testSpec(22), "")
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPool(t, s) // never started: job stays pending
	ok, err := p.Cancel(j.ID)
	if err != nil || !ok {
		t.Fatalf("cancel pending: ok=%v err=%v", ok, err)
	}
	got, err := s.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	// Canceling again is a no-op, not an error.
	if ok, err := p.Cancel(j.ID); ok || err != nil {
		t.Fatalf("re-cancel: ok=%v err=%v", ok, err)
	}
	if _, err := p.Cancel("j99999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestPoolCancelRunning(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	j, _, err := s.Submit(testSpec(23), "")
	if err != nil {
		t.Fatal(err)
	}
	p := newTestPool(t, s)
	// Cancel from inside the first checkpoint callback: the solver is
	// mid-run by construction, and SolveCtx re-checks ctx before the next
	// round, so the cancellation lands deterministically.
	fired := false
	p.checkpointHook = func(id string, _ core.Checkpoint) {
		if fired {
			return
		}
		fired = true
		if ok, err := p.Cancel(id); !ok || err != nil {
			t.Errorf("cancel running: ok=%v err=%v", ok, err)
		}
	}
	p.Start()
	defer shutdownPool(t, p)

	done := waitTerminal(t, s, j.ID)
	if done.State != StateCanceled {
		t.Fatalf("state %s (%s), want canceled", done.State, done.Error)
	}
	// The checkpoint taken before the cancel is still on disk, so a
	// hypothetical resubmission could resume — but the canceled job
	// itself never re-runs.
	if done.Checkpoint == nil {
		t.Fatal("checkpoint info lost")
	}
}
