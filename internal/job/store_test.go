package job

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"imc/internal/clock"
	"imc/internal/core"
	"imc/internal/expt"
)

var testEpoch = time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, clock.Fixed(testEpoch))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func testSpec(seed uint64) Spec {
	return Spec{Dataset: "test", K: 3, Eps: 0.3, Delta: 0.3, Seed: seed, MaxSamples: 1 << 12}
}

func TestSubmitValidatesSpec(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	if _, _, err := s.Submit(Spec{K: 0}, ""); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := s.Submit(Spec{K: 1, Alg: "NOPE"}, ""); err == nil {
		t.Fatal("unknown alg accepted")
	}
	if _, _, err := s.Submit(Spec{K: 1, Model: "sir"}, ""); err == nil {
		t.Fatal("unknown model accepted")
	}
	j, created, err := s.Submit(Spec{K: 1, Alg: "ubg"}, "")
	if err != nil || !created {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if j.Spec.Alg != expt.AlgUBG || j.Spec.Dataset != "facebook" || j.Spec.Scale != 0.1 {
		t.Fatalf("spec not normalized: %+v", j.Spec)
	}
	if j.State != StatePending || j.SubmittedAt != testEpoch {
		t.Fatalf("bad initial job: %+v", j)
	}
}

func TestSubmitIdempotencyKey(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	a, created, err := s.Submit(testSpec(1), "key-1")
	if err != nil || !created {
		t.Fatalf("first submit: %v", err)
	}
	b, created, err := s.Submit(testSpec(2), "key-1") // different spec, same key
	if err != nil {
		t.Fatal(err)
	}
	if created || b.ID != a.ID {
		t.Fatalf("idempotent resubmit created %v (ids %s vs %s)", created, b.ID, a.ID)
	}
	if b.Spec.Seed != 1 {
		t.Fatal("original spec must win on idempotent resubmit")
	}
	c, created, err := s.Submit(testSpec(3), "key-2")
	if err != nil || !created || c.ID == a.ID {
		t.Fatalf("distinct key reused job: %v", err)
	}
}

func TestTransitionsAndResult(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	j, _, err := s.Submit(testSpec(1), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(j.ID); err == nil || !strings.Contains(err.Error(), "pending") {
		t.Fatalf("result of pending job: %v", err)
	}
	if err := s.MarkFailed(j.ID, "x"); err == nil {
		t.Fatal("pending→failed allowed")
	}
	if _, err := s.MarkRunning(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MarkRunning(j.ID); err == nil {
		t.Fatal("double claim allowed")
	}
	res := Result{Instance: "test", Alg: "UBG", Seeds: []int32{4, 2}, Benefit: 3.5, TotalBenefit: 30}
	if err := s.MarkSucceeded(j.ID, res); err != nil {
		t.Fatal(err)
	}
	got, err := s.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benefit != res.Benefit || len(got.Seeds) != 2 || got.Seeds[0] != 4 {
		t.Fatalf("result drifted: %+v", got)
	}
	if err := s.CancelPending(j.ID); err == nil {
		t.Fatal("succeeded→canceled allowed")
	}
	if _, err := s.Get("j99999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestReplayRebuildsState(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	a, _, _ := s.Submit(testSpec(1), "k1")
	b, _, _ := s.Submit(testSpec(2), "")
	c, _, _ := s.Submit(testSpec(3), "")
	if _, err := s.MarkRunning(a.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkSucceeded(a.ID, Result{Alg: "UBG"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MarkRunning(b.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkFailed(b.ID, "boom"); err != nil {
		t.Fatal(err)
	}
	if err := s.CancelPending(c.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir)
	jobs := r.List()
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs", len(jobs))
	}
	if jobs[0].State != StateSucceeded || jobs[1].State != StateFailed || jobs[2].State != StateCanceled {
		t.Fatalf("states drifted: %s %s %s", jobs[0].State, jobs[1].State, jobs[2].State)
	}
	if jobs[1].Error != "boom" {
		t.Fatalf("error lost: %q", jobs[1].Error)
	}
	// Idempotency keys survive replay.
	again, created, err := r.Submit(testSpec(9), "k1")
	if err != nil || created || again.ID != a.ID {
		t.Fatalf("key lost on replay: %v created=%v", err, created)
	}
	// New IDs continue the sequence instead of colliding.
	d, _, err := r.Submit(testSpec(4), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if d.ID == j.ID {
			t.Fatalf("ID %s reused after replay", d.ID)
		}
	}
	// Results are still readable.
	if _, err := r.Result(a.ID); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryReturnsRunningToPending(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	j, _, _ := s.Submit(testSpec(1), "")
	if _, err := s.MarkRunning(j.ID); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no MarkInterrupted, just drop the handle.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir)
	got, err := r.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StatePending || got.Resumes != 1 {
		t.Fatalf("crash recovery: state=%s resumes=%d, want pending/1", got.State, got.Resumes)
	}
	if ids := r.PendingIDs(); len(ids) != 1 || ids[0] != j.ID {
		t.Fatalf("pending IDs %v", ids)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// The demotion was journaled, so a second replay agrees without
	// another bump.
	r2 := openTestStore(t, dir)
	got, err = r2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StatePending || got.Resumes != 1 {
		t.Fatalf("second replay: state=%s resumes=%d, want pending/1", got.State, got.Resumes)
	}
}

func TestTornJournalTailIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	j, _, _ := s.Submit(testSpec(1), "")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal.log")
	// A torn append: half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"state","id":"` + j.ID + `","state":"succ`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openTestStore(t, dir)
	got, err := r.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StatePending {
		t.Fatalf("torn tail applied: state=%s", got.State)
	}
	// The tail was truncated away: appends after reopen must replay
	// cleanly.
	if _, err := r.MarkRunning(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := r.MarkFailed(j.ID, "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := openTestStore(t, dir)
	got, err = r2.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed {
		t.Fatalf("post-truncation appends lost: state=%s", got.State)
	}
}

func TestSaveLoadCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	j, _, _ := s.Submit(testSpec(5), "")

	g, part := testTopology(t, 5)
	inst := &expt.Instance{Name: "test", G: g, Part: part, Config: j.Spec.InstanceConfig()}
	pool := testPool(t, 5, 64)
	if err := s.SaveCheckpoint(j.ID, core.Checkpoint{Pool: pool, Doublings: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checkpoint == nil || got.Checkpoint.Doublings != 2 || got.Checkpoint.Samples != 64 {
		t.Fatalf("checkpoint info %+v", got.Checkpoint)
	}

	cp, err := s.LoadCheckpoint(j.ID, inst)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Doublings != 2 || cp.Pool.NumSamples() != 64 {
		t.Fatalf("restored doublings=%d samples=%d", cp.Doublings, cp.Pool.NumSamples())
	}
	// Checkpoint info survives replay.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTestStore(t, dir)
	got, err = r.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checkpoint == nil || got.Checkpoint.Doublings != 2 {
		t.Fatalf("checkpoint info lost on replay: %+v", got.Checkpoint)
	}

	// A checkpoint taken under a different spec is refused.
	other, _, _ := r.Submit(testSpec(6), "")
	if err := os.Rename(filepath.Join(dir, j.ID+".ckpt"), filepath.Join(dir, other.ID+".ckpt")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadCheckpoint(other.ID, inst); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
	// Missing checkpoint is the sentinel, and DropCheckpoint tolerates
	// absence.
	if _, err := r.LoadCheckpoint(j.ID, inst); !errors.Is(err, errNoCheckpoint) {
		t.Fatalf("want errNoCheckpoint, got %v", err)
	}
	if err := r.DropCheckpoint(j.ID); err != nil {
		t.Fatal(err)
	}
}
