package job

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSubmitsSurviveReopen hammers Submit and transitions
// from many goroutines, then reopens the store: every job a caller was
// told about must replay with the same terminal state. This is the
// durability contract the staged group-commit must preserve — a Submit
// returns only after its record is fsynced, even when the fsync it
// rode on was paid by a different goroutine.
func TestConcurrentSubmitsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)

	const workers = 8
	const perWorker = 6
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				j, created, err := s.Submit(testSpec(uint64(w*perWorker+i+1)), fmt.Sprintf("key-%d-%d", w, i))
				if err != nil || !created {
					t.Errorf("worker %d submit %d: created=%v err=%v", w, i, created, err)
					return
				}
				// Walk half the jobs to a terminal state so replay must
				// reproduce transitions, not just submissions.
				if i%2 == 0 {
					if _, err := s.MarkRunning(j.ID); err != nil {
						t.Errorf("mark running %s: %v", j.ID, err)
						return
					}
					if err := s.MarkFailed(j.ID, "synthetic"); err != nil {
						t.Errorf("mark failed %s: %v", j.ID, err)
						return
					}
				}
				ids[w] = append(ids[w], j.ID)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	re := openTestStore(t, dir)
	for w, list := range ids {
		for i, id := range list {
			j, err := re.Get(id)
			if err != nil {
				t.Fatalf("job %s (worker %d #%d) lost across reopen: %v", id, w, i, err)
			}
			want := StatePending
			if i%2 == 0 {
				want = StateFailed
			}
			if j.State != want {
				t.Errorf("job %s replayed as %s, want %s", id, j.State, want)
			}
		}
	}
	if got := len(re.List()); got != workers*perWorker {
		t.Errorf("reopened store has %d jobs, want %d", got, workers*perWorker)
	}
}

// TestCommitPiggyback checks the group-commit fast path directly: after
// one commit syncs the buffer, an earlier ticket's commit must return
// without touching the file again.
func TestCommitPiggyback(t *testing.T) {
	dir := t.TempDir()
	jl, err := OpenJournalAt(dir+"/journal.log", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()

	t1, err := jl.Stage(journalRecord{Op: opSubmit, ID: "j1", At: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := jl.Stage(journalRecord{Op: opSubmit, ID: "j2", At: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Commit(t2); err != nil {
		t.Fatal(err)
	}
	jl.mu.Lock()
	synced := jl.synced
	jl.mu.Unlock()
	if synced != t2 {
		t.Fatalf("synced = %d after committing ticket %d", synced, t2)
	}
	if err := jl.Commit(t1); err != nil {
		t.Fatalf("piggybacked commit: %v", err)
	}

	// Both records must replay.
	var got []string
	if _, err := replayJournal(dir+"/journal.log", func(rec journalRecord) error {
		got = append(got, rec.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "j1" || got[1] != "j2" {
		t.Fatalf("replayed %v, want [j1 j2]", got)
	}
}
