package imc_test

import (
	"os"
	"testing"

	"imc"
)

// loadKarate reads the Zachary karate-club fixture — the classic
// real-world community-detection benchmark (34 nodes, 78 undirected
// edges, two factions around nodes 0 and 33).
func loadKarate(t *testing.T) *imc.Graph {
	t.Helper()
	f, err := os.Open("testdata/karate.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := imc.ReadEdgeList(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 34 || g.NumEdges() != 156 {
		t.Fatalf("karate fixture mangled: %s", g)
	}
	return g
}

func TestKarateLouvainStructure(t *testing.T) {
	g := loadKarate(t)
	part, err := imc.Louvain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Louvain on karate classically finds ~4 communities with
	// modularity ≈ 0.41.
	if r := part.NumCommunities(); r < 2 || r > 8 {
		t.Fatalf("Louvain found %d communities on karate", r)
	}
	if q := imc.Modularity(g, part); q < 0.35 {
		t.Fatalf("karate modularity %g, want ≥ 0.35", q)
	}
	// The two faction leaders (0 and 33) famously end up in different
	// communities.
	if part.Of(0) == part.Of(33) {
		t.Fatal("faction leaders 0 and 33 merged into one community")
	}
}

func TestKarateEndToEndIMC(t *testing.T) {
	g := loadKarate(t)
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 1)
	part, err := imc.Louvain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	sol, err := imc.Solve(g, part, imc.NewUBG(), imc.Options{
		K: 4, Eps: 0.25, Delta: 0.25, Seed: 1, MaxSamples: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 4 {
		t.Fatalf("seeds = %v", sol.Seeds)
	}
	// With k=4 and h=2 on a 34-node club, a decent solver influences
	// well over half the total benefit.
	mc, err := imc.EstimateBenefit(g, part, sol.Seeds, imc.MCOptions{Iterations: 10000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mc < 0.4*part.TotalBenefit() {
		t.Fatalf("karate benefit %g of %g — implausibly low", mc, part.TotalBenefit())
	}
	// The hubs 0, 33, 32 dominate the club; at least one must be picked.
	hub := false
	for _, s := range sol.Seeds {
		if s == 0 || s == 32 || s == 33 {
			hub = true
		}
	}
	if !hub {
		t.Fatalf("no faction hub among seeds %v", sol.Seeds)
	}
}

func TestKarateKCoreAndComponents(t *testing.T) {
	g := loadKarate(t)
	core := imc.KCore(g)
	// Karate's degeneracy (undirected) is 4; our arc-doubled cores are 8.
	best := int32(0)
	for _, c := range core {
		if c > best {
			best = c
		}
	}
	if best != 8 {
		t.Fatalf("karate degeneracy (arc-doubled) = %d, want 8", best)
	}
	if _, wcc := imc.WeaklyConnectedComponentsOf(g); wcc != 1 {
		t.Fatalf("karate should be connected, got %d components", wcc)
	}
}
