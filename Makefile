# Influence Maximization at Community Level — development targets.

GO ?= go

.PHONY: all build vet lint layout-lint lint-bench graph api test race bench bench-core fuzz jobs-test poolcache-test shard-test experiments examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/imclint ./...

# Just the v6 memory-layout & data-sharing contracts — the same gate
# CI's perf-contracts job applies (DESIGN.md §7.6).
layout-lint:
	$(GO) run ./cmd/imclint -check structlayout,falseshare,valuecopy,presize ./...

# Time each analyzer over the whole module and record the call/lock
# graph sizes it ran against.
lint-bench:
	$(GO) run ./cmd/imclint -bench BENCH_lint.json ./...

# Dump the whole-program call graph with per-function effect summaries
# and the lock-order graph.
graph:
	$(GO) run ./cmd/imclint -graph ./...

# Regenerate the exported-API golden snapshot after a deliberate change.
api:
	$(GO) run ./cmd/imclint -update-api ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The async job subsystem's suite, race-enabled: store durability,
# journal replay, worker pool, and the crash/resume determinism
# integration test.
jobs-test:
	$(GO) test -race -count=1 ./internal/job/ ./internal/serve/

# The pool snapshot format (v2 identity headers) and the shared pool
# cache, race-enabled: serialization identity checks, donor adoption
# determinism, cache store/evict/boot behavior, and the serve-level
# cold-vs-warm byte-identity integration test.
poolcache-test:
	$(GO) test -race -count=1 ./internal/ric/ ./internal/poolcache/ \
		./internal/serve/ -run 'Pool|Donor|Cache|Session|Eviction|Boot|ReadInto|Serial|ColdWarm'

# The distributed shard runtime, race-enabled: stream-family
# disjointness, offset-pool splice identity, merged-marginal greedy
# equality, the coordinator/worker protocol (worker death, restart
# resume, degrade-to-local), and the serve-level distributed-vs-local
# byte-identity test.
shard-test:
	$(GO) test -race -count=1 ./internal/xrand/ ./internal/shard/
	$(GO) test -race -count=1 ./internal/ric/ -run 'Offset|Splice|ImportRange|Shard'
	$(GO) test -race -count=1 ./internal/maxr/ -run 'Merged|Shards'
	$(GO) test -race -count=1 ./internal/serve/ -run 'Shard|Distributed'

bench:
	$(GO) test -bench=. -benchmem ./...

# Solver-kernel microbenchmarks (RIC generation + greedy scans) in the
# machine-readable BENCH_core.json shape. Pass BENCH_BASE=<old.json> to
# fill the before column from an earlier run.
bench-core:
	$(GO) run ./cmd/imcbench -benchcore BENCH_core.json \
		$(if $(BENCH_BASE),-benchbase $(BENCH_BASE))

fuzz:
	$(GO) test ./internal/graph/ -fuzz FuzzReadEdgeList -fuzztime 30s
	$(GO) test ./internal/graph/ -fuzz FuzzReadBinary -fuzztime 30s
	$(GO) test ./internal/ric/ -fuzz FuzzPoolRoundTrip -fuzztime 30s

# Regenerate every table and figure at a laptop-friendly scale.
experiments:
	$(GO) run ./cmd/imcbench -experiment all -scale 0.1 \
		-scalefor facebook=1.0,wikivote=0.3,pokec=0.05 \
		-runs 2 -maxsamples 65536 -btroots 64

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/viralmarketing
	$(GO) run ./examples/gridattack
	$(GO) run ./examples/election
	$(GO) run ./examples/budgeted
	$(GO) run ./examples/ltmodel
	$(GO) run ./examples/dks

clean:
	$(GO) clean ./...
