package imc

import (
	"bytes"
	"strings"
	"testing"
)

// buildTestInstance assembles a small instance through the public API
// only, mirroring the README quick start.
func buildTestInstance(t *testing.T) (*Graph, *Partition) {
	t.Helper()
	g, err := BuildDataset("facebook", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	g = ApplyWeights(g, WeightedCascade, 0, 42)
	part, err := Louvain(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	part, err = part.SplitBySize(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

func TestPublicAPISolveAllSolvers(t *testing.T) {
	g, part := buildTestInstance(t)
	solvers := []Solver{NewUBG(), NewMAF(1), NewBT(8, 0), NewMB(1, 8)}
	for _, s := range solvers {
		sol, err := Solve(g, part, s, Options{K: 4, Eps: 0.3, Delta: 0.3, Seed: 1, MaxSamples: 1 << 12})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(sol.Seeds) != 4 {
			t.Fatalf("%s: %d seeds", s.Name(), len(sol.Seeds))
		}
		if sol.CHat < 0 || sol.CHat > part.TotalBenefit() {
			t.Fatalf("%s: ĉ = %g", s.Name(), sol.CHat)
		}
	}
}

func TestPublicAPISolveFixedAndEstimate(t *testing.T) {
	g, part := buildTestInstance(t)
	sol, err := SolveFixed(g, part, NewUBG(), 3, 500, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(g, part, sol.Seeds, EstimateOptions{Eps: 0.2, Delta: 0.2, TMax: 1 << 14, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := EstimateBenefit(g, part, sol.Seeds, MCOptions{Iterations: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if mc > 0 && est.Converged {
		ratio := est.Benefit / mc
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("Estimate %g vs Monte-Carlo %g disagree wildly", est.Benefit, mc)
		}
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	g, part := buildTestInstance(t)
	if seeds, err := HBC(g, part, 3); err != nil || len(seeds) != 3 {
		t.Fatalf("HBC: %v %v", seeds, err)
	}
	if seeds, err := KS(g, part, 3); err != nil || len(seeds) != 3 {
		t.Fatalf("KS: %v %v", seeds, err)
	}
	if seeds, err := IM(g, part, 3, RISOptions{Seed: 5}); err != nil || len(seeds) != 3 {
		t.Fatalf("IM: %v %v", seeds, err)
	}
}

func TestPublicAPIGraphConstruction(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	b.AddUndirected(1, 2, 0.25)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(strings.NewReader(buf.String()), true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatal("edge-list round trip lost edges")
	}
	if _, err := FromEdges(3, g.Edges()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 {
		t.Fatalf("datasets: %v", names)
	}
	if _, err := BarabasiAlbert(50, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := WattsStrogatz(50, 4, 0.1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := SBM(50, 5, 3, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ErdosRenyi(50, 3, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICommunities(t *testing.T) {
	g, err := SBM(120, 6, 5, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Louvain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RandomCommunities(120, lp.NumCommunities(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if Modularity(g, lp) <= Modularity(g, rp) {
		t.Fatal("Louvain modularity should beat random")
	}
	p, err := NewPartition(4, [][]NodeID{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCommunities() != 2 {
		t.Fatal("partition construction")
	}
}

func TestPublicAPIPoolAndLT(t *testing.T) {
	g, part := buildTestInstance(t)
	pool, err := NewPool(g, part, PoolOptions{Seed: 1, Model: LT})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(200); err != nil {
		t.Fatal(err)
	}
	if pool.NumSamples() != 200 {
		t.Fatal("pool size")
	}
	sol, err := Solve(g, part, NewUBG(), Options{K: 3, Eps: 0.3, Delta: 0.3, Seed: 1, Model: LT, MaxSamples: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 3 {
		t.Fatal("LT solve seeds")
	}
}
