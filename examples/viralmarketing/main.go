// Viral marketing: the paper's "collaborative-based" scenario — a
// product (say, a team messaging app) is only adopted by a friend group
// once enough members are influenced, so value accrues per *group*, not
// per user. This example contrasts community-aware seeding (UBG) with
// classic influence maximization (IM), which chases raw spread and
// leaves groups half-converted.
package main

import (
	"fmt"
	"log"

	"imc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A mid-sized social network with heavy-tailed degrees.
	g, err := imc.BuildDataset("wikivote", 0.3, 7)
	if err != nil {
		return err
	}
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 7)

	// Friend groups from Louvain, capped at 8 people. A group adopts
	// when half its members are influenced; revenue is proportional to
	// group size.
	part, err := imc.Louvain(g, 7)
	if err != nil {
		return err
	}
	part, err = part.SplitBySize(8, 7)
	if err != nil {
		return err
	}
	part.SetFractionThresholds(0.5)
	part.SetPopulationBenefits()
	fmt.Printf("network: %d users, %d friend groups, %0.f total group value\n",
		g.NumNodes(), part.NumCommunities(), part.TotalBenefit())

	const budget = 20 // free-product giveaways
	mc := imc.MCOptions{Iterations: 5000, Seed: 99}

	// Community-aware campaign.
	sol, err := imc.Solve(g, part, imc.NewUBG(), imc.Options{K: budget, Eps: 0.2, Delta: 0.2, Seed: 7})
	if err != nil {
		return err
	}
	ubgValue, err := imc.EstimateBenefit(g, part, sol.Seeds, mc)
	if err != nil {
		return err
	}

	// Classic IM campaign: maximizes individual reach, oblivious to
	// group thresholds.
	imSeeds, err := imc.IM(g, part, budget, imc.RISOptions{Seed: 7})
	if err != nil {
		return err
	}
	imValue, err := imc.EstimateBenefit(g, part, imSeeds, mc)
	if err != nil {
		return err
	}
	imSpread, err := imc.EstimateSpread(g, imSeeds, mc)
	if err != nil {
		return err
	}
	ubgSpread, err := imc.EstimateSpread(g, sol.Seeds, mc)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-24s %12s %12s\n", "campaign", "group value", "raw reach")
	fmt.Printf("%-24s %12.1f %12.1f\n", "UBG (community-aware)", ubgValue, ubgSpread)
	fmt.Printf("%-24s %12.1f %12.1f\n", "IM  (classic)", imValue, imSpread)
	if ubgValue >= imValue {
		fmt.Println("\nUBG converts at least as much group value as classic IM,")
		fmt.Println("even when IM reaches a similar (or larger) number of users —")
		fmt.Println("the collaborative objective rewards concentrating influence.")
	} else {
		fmt.Println("\nnote: on this draw IM edged out UBG; rerun with more")
		fmt.Println("Monte-Carlo iterations or a different seed to average out noise.")
	}
	return nil
}
