// Election: the paper's third motivating scenario — each community is a
// state's population, a state is "won" when half its voters are
// influenced, and winning a state yields its electoral votes. Electoral
// votes are NOT proportional to population (small states are
// over-weighted), which is exactly the benefit generality b_i that IMC
// supports and plain spread maximization cannot see. The example
// compares UBG against the KS knapsack baseline that ignores network
// structure.
package main

import (
	"fmt"
	"log"

	"imc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 12 "states" of varying population with mostly in-state social
	// ties.
	statePop := []int{60, 50, 45, 40, 35, 30, 25, 20, 15, 12, 10, 8}
	// Electoral votes: deliberately non-proportional (floor of pop/8,
	// plus 2 — the small-state bonus).
	votes := make([]float64, len(statePop))
	total := 0
	for i, p := range statePop {
		votes[i] = float64(p/8 + 2)
		total += p
	}

	g, err := imc.SBM(total, len(statePop), 6, 0.8, 23)
	if err != nil {
		return err
	}
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 23)

	// Assign contiguous voter blocks to states in proportion to
	// population (SBM blocks are round-robin, so remap by count).
	sets := make([][]imc.NodeID, len(statePop))
	next := 0
	for i, p := range statePop {
		for j := 0; j < p; j++ {
			sets[i] = append(sets[i], imc.NodeID(next))
			next++
		}
	}
	part, err := imc.NewPartition(total, sets)
	if err != nil {
		return err
	}
	part.SetFractionThresholds(0.5)
	totalVotes := 0.0
	for i, v := range votes {
		if err := part.SetBenefit(i, v); err != nil {
			return err
		}
		totalVotes += v
	}
	fmt.Printf("electorate: %d voters, %d states, %.0f electoral votes\n",
		total, len(statePop), totalVotes)

	const influencers = 30
	mc := imc.MCOptions{Iterations: 5000, Seed: 29}

	sol, err := imc.Solve(g, part, imc.NewUBG(), imc.Options{K: influencers, Eps: 0.2, Delta: 0.2, Seed: 23})
	if err != nil {
		return err
	}
	ubgVotes, err := imc.EstimateBenefit(g, part, sol.Seeds, mc)
	if err != nil {
		return err
	}

	ksSeeds, err := imc.KS(g, part, influencers)
	if err != nil {
		return err
	}
	ksVotes, err := imc.EstimateBenefit(g, part, ksSeeds, mc)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-28s %16s\n", "strategy", "expected votes")
	fmt.Printf("%-28s %16.1f\n", "UBG (network-aware)", ubgVotes)
	fmt.Printf("%-28s %16.1f\n", "KS (knapsack, no network)", ksVotes)
	fmt.Printf("\nUBG exploits cross-state influence cascades that the knapsack\n")
	fmt.Printf("baseline cannot model; the paper reports KS trailing every other\n")
	fmt.Printf("method for the same reason.\n")
	return nil
}
