// LT model: the paper's noted extension — the whole pipeline (RIC
// sampling, UBG, IMCAF) also runs under Linear Threshold diffusion.
// This example solves the same instance under IC and LT and compares
// the seed choices and what each seed set is worth under each model.
package main

import (
	"fmt"
	"log"

	"imc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := imc.BuildDataset("wikivote", 0.2, 17)
	if err != nil {
		return err
	}
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 17)

	part, err := imc.Louvain(g, 17)
	if err != nil {
		return err
	}
	part, err = part.SplitBySize(8, 17)
	if err != nil {
		return err
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	fmt.Printf("instance: %d users, %d communities\n", g.NumNodes(), part.NumCommunities())

	const k = 15
	solve := func(model imc.Model) ([]imc.NodeID, error) {
		sol, err := imc.Solve(g, part, imc.NewUBG(), imc.Options{
			K: k, Eps: 0.2, Delta: 0.2, Seed: 17, Model: model, MaxSamples: 1 << 16,
		})
		if err != nil {
			return nil, err
		}
		return sol.Seeds, nil
	}
	icSeeds, err := solve(imc.IC)
	if err != nil {
		return err
	}
	ltSeeds, err := solve(imc.LT)
	if err != nil {
		return err
	}

	// Cross-evaluate: score both seed sets under both models.
	score := func(seeds []imc.NodeID, model imc.Model) (float64, error) {
		return imc.EstimateBenefit(g, part, seeds, imc.MCOptions{
			Iterations: 4000, Seed: 19, Model: model,
		})
	}
	fmt.Printf("\n%-22s %14s %14s\n", "seed set", "value under IC", "value under LT")
	for _, row := range []struct {
		name  string
		seeds []imc.NodeID
	}{
		{"optimized for IC", icSeeds},
		{"optimized for LT", ltSeeds},
	} {
		ic, err := score(row.seeds, imc.IC)
		if err != nil {
			return err
		}
		lt, err := score(row.seeds, imc.LT)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %14.1f %14.1f\n", row.name, ic, lt)
	}

	overlap := 0
	inIC := make(map[imc.NodeID]bool, len(icSeeds))
	for _, s := range icSeeds {
		inIC[s] = true
	}
	for _, s := range ltSeeds {
		if inIC[s] {
			overlap++
		}
	}
	fmt.Printf("\nseed overlap: %d/%d\n", overlap, k)
	if overlap == k {
		fmt.Println("On this hub-dominated instance both models elect the same seeds —")
		fmt.Println("the influencers that matter under IC matter under LT too. Sparser")
		fmt.Println("or more modular graphs drive the two seed sets apart.")
	} else {
		fmt.Println("The models disagree on some seeds; each diagonal entry of the")
		fmt.Println("table should (weakly) dominate its column.")
	}
	return nil
}
