// Grid attack: the paper's smart-grid vulnerability scenario (§I, ref
// [7]) — an adversary uses a social network coupled to a power grid to
// manipulate electricity demand. A geographic neighborhood destabilizes
// only if enough of its residents are influenced simultaneously, so the
// attacker's objective is exactly IMC with neighborhoods as disjoint
// communities. This example sweeps the attacker's budget k and reports
// how much of the grid each budget can destabilize, using the MAF
// solver (the fast option an online attacker would favor).
package main

import (
	"fmt"
	"log"

	"imc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Neighborhood-structured social graph: SBM blocks are geographic
	// neighborhoods whose residents mostly befriend each other.
	const (
		residents     = 3000
		neighborhoods = 150
	)
	g, err := imc.SBM(residents, neighborhoods, 5, 1.2, 11)
	if err != nil {
		return err
	}
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 11)

	// Ground-truth neighborhoods as communities: a neighborhood
	// destabilizes when 40% of residents shift their demand. The grid
	// damage is proportional to neighborhood population.
	sets := make([][]imc.NodeID, neighborhoods)
	for u := 0; u < residents; u++ {
		b := u % neighborhoods
		sets[b] = append(sets[b], imc.NodeID(u))
	}
	part, err := imc.NewPartition(residents, sets)
	if err != nil {
		return err
	}
	part.SetFractionThresholds(0.4)
	part.SetPopulationBenefits()
	fmt.Printf("grid: %d residents in %d neighborhoods (damage potential %.0f)\n",
		residents, neighborhoods, part.TotalBenefit())

	fmt.Printf("\n%8s %18s %14s\n", "budget", "est. damage", "selection")
	for _, k := range []int{10, 25, 50, 100} {
		sol, err := imc.Solve(g, part, imc.NewMAF(11), imc.Options{
			K:          k,
			Eps:        0.2,
			Delta:      0.2,
			Seed:       11,
			MaxSamples: 1 << 16,
		})
		if err != nil {
			return err
		}
		damage, err := imc.EstimateBenefit(g, part, sol.Seeds, imc.MCOptions{Iterations: 2000, Seed: 13})
		if err != nil {
			return err
		}
		fmt.Printf("%8d %12.1f (%4.1f%%) %14s\n",
			k, damage, 100*damage/part.TotalBenefit(), sol.Elapsed.Round(1_000_000))
	}
	fmt.Println("\nDefensive reading: the curve shows how few compromised accounts")
	fmt.Println("suffice to push whole neighborhoods over their demand threshold —")
	fmt.Println("the quantity a grid operator must monitor, per the paper's threat model.")

	// Trace one concrete cascade from a 10-account attack so the
	// round-by-round mechanics are visible.
	sol, err := imc.Solve(g, part, imc.NewMAF(11), imc.Options{
		K: 10, Eps: 0.2, Delta: 0.2, Seed: 11, MaxSamples: 1 << 15,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nsample cascade from the 10-account attack:")
	for _, round := range imc.TraceCascade(g, sol.Seeds, 99) {
		if round.Round > 4 {
			fmt.Println("  ... (cascade continues)")
			break
		}
		fmt.Printf("  round %d: %d residents newly influenced\n", round.Round, len(round.Activated))
	}
	return nil
}
