// DkS via IMC: the paper's Theorem 1 reduction, run forwards — solve a
// Densest k-Subgraph instance by converting it to an IMC instance,
// running a MAXR solver, and projecting the seeds back. This is the
// construction behind IMC's inapproximability bound, demonstrated as a
// working algorithm.
package main

import (
	"fmt"
	"log"

	"imc/internal/maxr"
	"imc/internal/reduction"
	"imc/internal/ric"
	"imc/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 12-node graph with a planted dense 5-clique (nodes 0-4) plus
	// sparse noise edges: the densest 5-subgraph is the clique.
	var edges []reduction.DkSEdge
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			edges = append(edges, reduction.DkSEdge{A: a, B: b})
		}
	}
	rng := xrand.New(7)
	for len(edges) < 18 {
		a, b := rng.Intn(12), rng.Intn(12)
		if a == b || (a < 5 && b < 5) {
			continue
		}
		dup := false
		for _, e := range edges {
			if (e.A == a && e.B == b) || (e.A == b && e.B == a) {
				dup = true
			}
		}
		if !dup {
			edges = append(edges, reduction.DkSEdge{A: a, B: b})
		}
	}
	inst, err := reduction.FromDkS(12, edges)
	if err != nil {
		return err
	}
	fmt.Printf("DkS instance: 12 nodes, %d edges (planted 5-clique on 0..4)\n", len(edges))
	fmt.Printf("reduced IMC instance: %d nodes, %d two-member communities\n",
		inst.G.NumNodes(), inst.NumCommunities())

	// Solve the reduced instance with UBG over a RIC pool (weight-1
	// edges make sampling deterministic; the pool just replays the
	// reachability structure).
	pool, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: 7})
	if err != nil {
		return err
	}
	if err := pool.Generate(4000); err != nil {
		return err
	}
	res, err := maxr.UBG{}.Solve(pool, 5)
	if err != nil {
		return err
	}
	nodes, err := inst.ProjectSeeds(res.Seeds)
	if err != nil {
		return err
	}
	fmt.Printf("\nprojected DkS solution: %v\n", nodes)
	fmt.Printf("induced edges e(S) = %d (optimum: 10, the clique)\n", inst.InducedEdges(nodes))
	fmt.Printf("IMC benefit c(S)   = %.0f (Theorem 1: e(S) = c(S))\n", inst.Benefit(res.Seeds))
	return nil
}
