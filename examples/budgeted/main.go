// Budgeted: the cost-aware IMC variant — influencers charge fees
// proportional to their reach, and the campaign has a dollar budget
// instead of a head-count. Compares the budget-aware solver against
// naively buying the biggest influencers until the money runs out.
package main

import (
	"fmt"
	"log"
	"sort"

	"imc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := imc.BuildDataset("wikivote", 0.2, 31)
	if err != nil {
		return err
	}
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 31)

	part, err := imc.Louvain(g, 31)
	if err != nil {
		return err
	}
	part, err = part.SplitBySize(8, 31)
	if err != nil {
		return err
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()

	// Influencer pricing: $10 per follower (out-neighbor), minimum $10.
	price := imc.DegreeCost(g, 10)
	const budget = 3000.0
	fmt.Printf("market: %d users, %d groups, campaign budget $%.0f\n",
		g.NumNodes(), part.NumCommunities(), budget)

	// Budget-aware seed selection.
	res, err := imc.SolveBudgeted(g, part, price, budget, 20000, imc.PoolOptions{Seed: 31})
	if err != nil {
		return err
	}
	mc := imc.MCOptions{Iterations: 4000, Seed: 33}
	smart, err := imc.EstimateBenefit(g, part, res.Seeds, mc)
	if err != nil {
		return err
	}

	// Naive plan: buy the most-followed influencers until broke.
	nodes := make([]imc.NodeID, g.NumNodes())
	for i := range nodes {
		nodes[i] = imc.NodeID(i)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return g.OutDegree(nodes[i]) > g.OutDegree(nodes[j])
	})
	var naive []imc.NodeID
	spent := 0.0
	for _, v := range nodes {
		if c := price(v); spent+c <= budget {
			naive = append(naive, v)
			spent += c
		}
	}
	naiveValue, err := imc.EstimateBenefit(g, part, naive, mc)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-26s %10s %12s %14s\n", "plan", "seeds", "spent", "group value")
	fmt.Printf("%-26s %10d %11.0f$ %14.1f\n", "budget-aware (rate greedy)",
		len(res.Seeds), budgetSpent(res.Seeds, price), smart)
	fmt.Printf("%-26s %10d %11.0f$ %14.1f\n", "biggest-influencers-first",
		len(naive), spent, naiveValue)
	fmt.Println("\nThe rate greedy buys cheaper mid-tier users whose combined group")
	fmt.Println("coverage beats a handful of expensive celebrities — the classic")
	fmt.Println("budgeted-coverage effect, now under the community objective.")
	return nil
}

func budgetSpent(seeds []imc.NodeID, price imc.CostFunc) float64 {
	total := 0.0
	for _, s := range seeds {
		total += price(s)
	}
	return total
}
