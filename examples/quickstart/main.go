// Quickstart: the minimal end-to-end IMC pipeline — build a social
// graph, detect communities, and pick seeds with the UBG solver under
// the IMCAF framework.
package main

import (
	"fmt"
	"log"

	"imc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A small synthetic social network with weighted-cascade edge
	//    probabilities w(u,v) = 1/d_in(v), the paper's setting.
	g, err := imc.BuildDataset("facebook", 0.5, 42)
	if err != nil {
		return err
	}
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 42)
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// 2. Louvain communities, capped at size 8, with bounded activation
	//    thresholds (a community is influenced once 2 members activate)
	//    and population benefits.
	part, err := imc.Louvain(g, 42)
	if err != nil {
		return err
	}
	part, err = part.SplitBySize(8, 42)
	if err != nil {
		return err
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	fmt.Printf("communities: %d (total benefit %.0f)\n", part.NumCommunities(), part.TotalBenefit())

	// 3. Solve IMC with the UBG sandwich solver: ε = δ = 0.2 as in the
	//    paper's experiments.
	sol, err := imc.Solve(g, part, imc.NewUBG(), imc.Options{
		K:     10,
		Eps:   0.2,
		Delta: 0.2,
		Seed:  42,
	})
	if err != nil {
		return err
	}
	fmt.Printf("seeds: %v\n", sol.Seeds)
	fmt.Printf("estimated benefit (RIC pool): %.1f using %d samples (%s, %s)\n",
		sol.CHat, sol.Samples, sol.Stopped, sol.Elapsed.Round(1_000_000))

	// 4. Validate with an independent forward Monte-Carlo estimate.
	mc, err := imc.EstimateBenefit(g, part, sol.Seeds, imc.MCOptions{Iterations: 5000, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Printf("benefit by forward Monte Carlo: %.1f\n", mc)
	return nil
}
