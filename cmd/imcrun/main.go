// Command imcrun solves one IMC instance with one algorithm and prints
// the selected seed set and its estimated benefit.
//
// Usage:
//
//	imcrun -dataset facebook -scale 0.5 -alg UBG -k 10
//	imcrun -graph edges.txt -directed -alg MAF -k 20 -bounded
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"imc"
	"imc/internal/expt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imcrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset   = flag.String("dataset", "facebook", "dataset analog name (ignored when -graph is set)")
		scale     = flag.Float64("scale", 0.1, "dataset scale in (0, 1]")
		graphFile = flag.String("graph", "", "edge-list file to load instead of a synthetic dataset")
		directed  = flag.Bool("directed", true, "treat -graph edge list as directed")
		alg       = flag.String("alg", "UBG", "algorithm: UBG|MAF|MB|HBC|KS|IM|DD|UBG+LS")
		allAlgs   = flag.Bool("all", false, "run every paper algorithm and print a comparison table")
		k         = flag.Int("k", 10, "seed budget")
		eps       = flag.Float64("eps", 0.2, "approximation slack ε")
		delta     = flag.Float64("delta", 0.2, "failure probability δ")
		seed      = flag.Uint64("seed", 42, "random seed")
		sizeCap   = flag.Int("s", 8, "community size cap")
		formation = flag.String("formation", "louvain", "community formation: louvain|random")
		bounded   = flag.Bool("bounded", false, "bounded thresholds h=2 (default: 50% of population)")
		maxSamp   = flag.Int("maxsamples", 1<<17, "RIC sample cap")
		btRoots   = flag.Int("btroots", 64, "BT root cap inside MB (0 = all)")
		commFile  = flag.String("communities", "", "partition JSON to load (skips formation/threshold flags)")
		saveComm  = flag.String("save-communities", "", "write the instance's partition JSON here")
	)
	flag.Parse()

	var inst *expt.Instance
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		if err != nil {
			return err
		}
		var g *imc.Graph
		if strings.HasSuffix(*graphFile, ".imcg") {
			g, err = imc.ReadBinaryGraph(f)
		} else {
			g, err = imc.ReadEdgeList(f, *directed)
		}
		f.Close()
		if err != nil {
			return err
		}
		g = imc.ApplyWeights(g, imc.WeightedCascade, 0, *seed)
		var part *imc.Partition
		if *commFile != "" {
			part, err = loadPartition(*commFile)
			if err != nil {
				return err
			}
		} else {
			part, err = formCommunities(g, *formation, *sizeCap, *seed)
			if err != nil {
				return err
			}
			part, err = part.SplitBySize(*sizeCap, *seed)
			if err != nil {
				return err
			}
			if *bounded {
				part.SetBoundedThresholds(2)
			} else {
				part.SetFractionThresholds(0.5)
			}
			part.SetPopulationBenefits()
		}
		inst = &expt.Instance{Name: *graphFile, G: g, Part: part}
	} else {
		form := expt.Louvain
		if strings.EqualFold(*formation, "random") {
			form = expt.RandomFormation
		}
		var err error
		inst, err = expt.BuildInstance(expt.InstanceConfig{
			Dataset:   *dataset,
			Scale:     *scale,
			Formation: form,
			SizeCap:   *sizeCap,
			Bounded:   *bounded,
			Seed:      *seed,
		})
		if err != nil {
			return err
		}
	}

	fmt.Printf("instance %s: n=%d m=%d r=%d b=%.0f\n",
		inst.Name, inst.G.NumNodes(), inst.G.NumEdges(),
		inst.Part.NumCommunities(), inst.Part.TotalBenefit())
	fmt.Printf("seed       %d\n", *seed)

	if *saveComm != "" {
		f, err := os.Create(*saveComm)
		if err != nil {
			return err
		}
		err = imc.WritePartitionJSON(f, inst.Part)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("partition saved to %s\n", *saveComm)
	}

	runCfg := expt.RunConfig{
		Eps:        *eps,
		Delta:      *delta,
		Seed:       *seed,
		Runs:       1,
		MaxSamples: *maxSamp,
		BTMaxRoots: *btRoots,
	}
	// Timings go to stderr: stdout carries only seed-determined values,
	// so two runs with the same -seed are byte-identical.
	if *allAlgs {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "algorithm\tbenefit")
		for _, name := range expt.AllAlgorithms {
			res, err := expt.RunAlg(inst, name, *k, runCfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%.2f\n", res.Alg, res.Benefit)
			fmt.Fprintf(os.Stderr, "%-8s select %.3fs\n", res.Alg, res.Runtime.Seconds())
		}
		return tw.Flush()
	}
	start := time.Now()
	res, err := expt.RunAlg(inst, strings.ToUpper(*alg), *k, runCfg)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm  %s\n", res.Alg)
	fmt.Printf("seeds      %v\n", res.Seeds)
	fmt.Printf("benefit    %.2f (of total %.0f)\n", res.Benefit, inst.Part.TotalBenefit())
	fmt.Fprintf(os.Stderr, "select     %s\n", res.Runtime)
	fmt.Fprintf(os.Stderr, "wall       %s\n", time.Since(start))
	return nil
}

func loadPartition(path string) (*imc.Partition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return imc.ReadPartitionJSON(f)
}

func formCommunities(g *imc.Graph, formation string, sizeCap int, seed uint64) (*imc.Partition, error) {
	if strings.EqualFold(formation, "random") {
		r := g.NumNodes() / sizeCap
		if r < 1 {
			r = 1
		}
		return imc.RandomCommunities(g.NumNodes(), r, seed)
	}
	return imc.Louvain(g, seed)
}
