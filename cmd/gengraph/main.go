// Command gengraph generates one of the synthetic dataset analogs and
// writes it as a weighted edge list.
//
// Usage:
//
//	gengraph -dataset facebook -scale 1.0 -seed 42 -out facebook.txt
//	gengraph -dataset dblp -scale 0.1 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"imc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset = flag.String("dataset", "facebook", "dataset analog: facebook|wikivote|epinions|dblp|pokec")
		scale   = flag.Float64("scale", 0.1, "dataset scale in (0, 1]")
		seed    = flag.Uint64("seed", 42, "generation seed")
		out     = flag.String("out", "", "output file (default stdout)")
		wc      = flag.Bool("weighted-cascade", true, "apply 1/d_in(v) edge weights")
		stats   = flag.Bool("stats", false, "print statistics only, no edge list")
		binFmt  = flag.Bool("binary", false, "write the compact binary format instead of a text edge list")
	)
	flag.Parse()

	g, err := imc.BuildDataset(*dataset, *scale, *seed)
	if err != nil {
		return err
	}
	if *wc {
		g = imc.ApplyWeights(g, imc.WeightedCascade, 0, *seed)
	}
	if *stats {
		s := g.ComputeStats()
		wcc, wccCount := imc.WeaklyConnectedComponentsOf(g)
		fmt.Printf("dataset=%s scale=%g nodes=%d edges=%d maxOutDeg=%d maxInDeg=%d avgDeg=%.2f wcc=%d largestWCC=%d\n",
			*dataset, *scale, s.Nodes, s.Edges, s.MaxOutDegree, s.MaxInDegree, s.AvgDegree,
			wccCount, imc.LargestComponentSize(wcc, wccCount))
		return nil
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *binFmt {
		return imc.WriteBinaryGraph(w, g)
	}
	return imc.WriteEdgeList(w, g)
}
