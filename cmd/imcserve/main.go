// Command imcserve runs the IMC solver as a JSON-over-HTTP service.
//
// Usage:
//
//	imcserve -addr :8080
//	curl localhost:8080/datasets
//	curl -X POST localhost:8080/solve -d '{"dataset":"facebook","scale":0.1,"alg":"UBG","k":10}'
//
// With -job-dir, the async job subsystem comes up too: solves are
// submitted to POST /v1/jobs, run on a bounded worker pool, and
// checkpoint their progress to the job directory — a killed or
// restarted imcserve resumes every in-flight job from its last
// checkpoint and produces the result an uninterrupted run would have.
//
//	imcserve -addr :8080 -job-dir /var/lib/imcserve/jobs -workers 2
//	curl -X POST localhost:8080/v1/jobs -d '{"dataset":"facebook","scale":0.1,"alg":"UBG","k":10}'
//
// The distributed shard runtime splits RIC sample generation across
// processes. One imcserve runs as the coordinator; any number run as
// workers and join it:
//
//	imcserve -addr :8080 -coordinator
//	imcserve -addr :8081 -worker -join http://coord:8080 -advertise http://worker1:8081
//	imcserve -addr :8082 -worker -join http://coord:8080 -advertise http://worker2:8082
//
// Solves against the coordinator then farm generation out to the
// workers and splice the shards back — byte-identical to a
// single-process solve, whatever the worker count. With no workers
// joined, the coordinator simply generates locally.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"imc/internal/job"
	"imc/internal/poolcache"
	"imc/internal/serve"
	"imc/internal/shard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imcserve:", err)
		os.Exit(1)
	}
}

// flagGroups drives the sectioned -h output: every flag is declared
// under exactly one heading, so the help text reads as the subsystems
// users enable, not as one alphabetical wall.
var flagGroups = []struct {
	title string
	names []string
}{
	{"Server", []string{"addr", "shutdown-timeout"}},
	{"Robustness", []string{"solve-timeout", "max-inflight"}},
	{"Async jobs (/v1/jobs)", []string{"job-dir", "workers"}},
	{"Pool cache", []string{"pool-cache-dir", "pool-cache-bytes"}},
	{"Distributed shard runtime", []string{"coordinator", "worker", "join", "advertise", "shard-attempts"}},
}

func groupedUsage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "Usage of imcserve:\n")
	for _, g := range flagGroups {
		fmt.Fprintf(out, "\n%s:\n", g.title)
		for _, name := range g.names {
			f := flag.Lookup(name)
			if f == nil {
				continue
			}
			typeName, usage := flag.UnquoteUsage(f)
			fmt.Fprintf(out, "  -%s", f.Name)
			if typeName != "" {
				fmt.Fprintf(out, " %s", typeName)
			}
			fmt.Fprintf(out, "\n    \t%s", strings.ReplaceAll(usage, "\n", "\n    \t"))
			if f.DefValue != "" && f.DefValue != "false" {
				fmt.Fprintf(out, " (default %s)", f.DefValue)
			}
			fmt.Fprintln(out)
		}
	}
}

func run() error {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown deadline")
		solveTimeout    = flag.Duration("solve-timeout", serve.DefaultSolveTimeout, "per-request deadline on heavy endpoints (negative disables)")
		maxInflight     = flag.Int("max-inflight", 0, "max concurrent heavy requests before shedding with 429 (0 = GOMAXPROCS)")
		jobDir          = flag.String("job-dir", "", "directory for the async job store; empty disables /v1/jobs")
		workers         = flag.Int("workers", 2, "job worker pool size (with -job-dir)")
		poolCacheDir    = flag.String("pool-cache-dir", "", "directory for the shared RIC pool snapshot cache; empty disables caching")
		poolCacheBytes  = flag.Int64("pool-cache-bytes", 1<<30, "pool cache byte budget before LRU eviction (with -pool-cache-dir; ≤ 0 = unlimited)")
		coordinator     = flag.Bool("coordinator", false, "run as shard coordinator: distribute RIC generation to joined workers")
		workerMode      = flag.Bool("worker", false, "run as shard worker: serve sample ranges at /shard/*")
		joinURL         = flag.String("join", "", "coordinator base URL to register with (with -worker)")
		advertise       = flag.String("advertise", "", "base URL the coordinator should dial back (required with -join)")
		shardAttempts   = flag.Int("shard-attempts", 3, "workers tried per sample range before the coordinator generates it locally")
	)
	flag.Usage = groupedUsage
	flag.Parse()
	if *joinURL != "" && !*workerMode {
		return errors.New("-join requires -worker")
	}
	if *joinURL != "" && *advertise == "" {
		return errors.New("-join requires -advertise (the URL the coordinator dials back)")
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := serve.Config{
		SolveTimeout: *solveTimeout,
		MaxInflight:  *maxInflight,
	}

	// The pool cache, when enabled, is shared by the synchronous solve
	// endpoints, the job workers, and the shard worker (which stores its
	// generated ranges as content-addressed shard entries): any solve
	// warms it, any later solve over the same (instance, model, seed)
	// adopts the cached samples and generates only the missing tail.
	var cache *poolcache.Cache
	if *poolCacheDir != "" {
		var err error
		cache, err = poolcache.Open(*poolCacheDir, poolcache.Options{
			MaxBytes: *poolCacheBytes,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			return err
		}
		st := cache.Stats()
		logger.Info("pool cache open", "dir", *poolCacheDir,
			"entries", st.Entries, "bytes", st.Bytes, "budget", *poolCacheBytes)
		cfg.PoolCache = cache
	}

	// The job subsystem, when enabled, opens the store (replaying the
	// journal: jobs left running by a previous process return to pending)
	// and starts the worker pool, which re-enqueues every pending job —
	// resume-on-boot.
	var pool *job.Pool
	if *jobDir != "" {
		store, err := job.Open(*jobDir, nil)
		if err != nil {
			return err
		}
		defer store.Close()
		pool = job.NewPool(store, job.PoolOptions{Workers: *workers, Log: logger, PoolCache: cache})
		pending := len(store.PendingIDs())
		pool.Start()
		logger.Info("job pool started", "dir", *jobDir, "workers", *workers, "resumedPending", pending)
		cfg.JobStore = store
		cfg.JobPool = pool
	}

	// Shard roles. A worker persists generated ranges in the pool cache
	// and records completions in a journal ledger (under -job-dir when
	// set), so a killed-and-restarted worker serves the same ranges
	// without regenerating. A coordinator accepts joins at /shard/join
	// and farms solve-time generation out to whoever has joined.
	if *workerMode {
		wcfg := shard.WorkerConfig{
			Build:  serve.ShardInstanceBuilder(),
			Cache:  cache,
			Logger: logger,
		}
		if *jobDir != "" {
			wcfg.LedgerPath = filepath.Join(*jobDir, "shard-ledger.jsonl")
		}
		w, err := shard.NewWorker(wcfg)
		if err != nil {
			return err
		}
		defer w.Close()
		logger.Info("shard worker enabled", "ledger", wcfg.LedgerPath != "", "cache", cache != nil)
		cfg.ShardWorker = w
	}
	if *coordinator {
		cfg.ShardCoordinator = shard.NewCoordinator(shard.CoordinatorConfig{
			MaxAttempts: *shardAttempts,
			Logger:      logger,
		})
		logger.Info("shard coordinator enabled", "attempts", *shardAttempts)
	}

	handler := serve.NewWithOptions(logger, nil, cfg).Handler()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	// The join loop registers this worker with the coordinator, retrying
	// until it lands, then re-joins periodically as a heartbeat —
	// re-registration is how a worker the coordinator marked dead (after
	// a restart, say) returns to rotation.
	joinCtx, stopJoin := context.WithCancel(context.Background())
	defer stopJoin()
	if *joinURL != "" {
		go joinLoop(joinCtx, logger, *joinURL, *advertise)
	}

	// drainJobs checkpoints and parks the running jobs: each worker is
	// interrupted at its next solver batch, the job returns to pending
	// (its latest checkpoint is already durable), and the next boot
	// resumes it.
	drainJobs := func(ctx context.Context) {
		if pool == nil {
			return
		}
		if err := pool.Shutdown(ctx); err != nil {
			logger.Error("job pool drain incomplete", "err", err)
			return
		}
		logger.Info("job pool drained")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		// Stop intake first, then park the jobs, sharing one deadline.
		if err := srv.Shutdown(ctx); err != nil {
			// The deadline passed with requests still in flight; the
			// per-request solve deadline will reap them, but don't leave
			// the listener half-open.
			_ = srv.Close()
			drainJobs(ctx)
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		drainJobs(ctx)
		<-errCh // drain the ListenAndServe result
		return nil
	}
}

// joinLoop registers with the coordinator: fast retries until the first
// success (the coordinator may still be booting), then a slow heartbeat.
func joinLoop(ctx context.Context, logger *slog.Logger, coordURL, advertise string) {
	interval := 2 * time.Second
	joined := false
	for {
		if err := shard.Join(ctx, nil, coordURL, advertise); err != nil {
			if ctx.Err() != nil {
				return
			}
			logger.Warn("shard join failed", "coordinator", coordURL, "err", err)
		} else if !joined {
			logger.Info("joined shard coordinator", "coordinator", coordURL, "advertise", advertise)
			joined = true
			interval = 30 * time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}
