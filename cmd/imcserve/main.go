// Command imcserve runs the IMC solver as a JSON-over-HTTP service.
//
// Usage:
//
//	imcserve -addr :8080
//	curl localhost:8080/datasets
//	curl -X POST localhost:8080/solve -d '{"dataset":"facebook","scale":0.1,"alg":"UBG","k":10}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imc/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imcserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown deadline")
		solveTimeout    = flag.Duration("solve-timeout", serve.DefaultSolveTimeout, "per-request deadline on heavy endpoints (negative disables)")
		maxInflight     = flag.Int("max-inflight", 0, "max concurrent heavy requests before shedding with 429 (0 = GOMAXPROCS)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	handler := serve.NewWithOptions(logger, nil, serve.Config{
		SolveTimeout: *solveTimeout,
		MaxInflight:  *maxInflight,
	}).Handler()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// The deadline passed with requests still in flight; the
			// per-request solve deadline will reap them, but don't leave
			// the listener half-open.
			_ = srv.Close()
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		<-errCh // drain the ListenAndServe result
		return nil
	}
}
