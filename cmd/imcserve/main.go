// Command imcserve runs the IMC solver as a JSON-over-HTTP service.
//
// Usage:
//
//	imcserve -addr :8080
//	curl localhost:8080/datasets
//	curl -X POST localhost:8080/solve -d '{"dataset":"facebook","scale":0.1,"alg":"UBG","k":10}'
//
// With -job-dir, the async job subsystem comes up too: solves are
// submitted to POST /v1/jobs, run on a bounded worker pool, and
// checkpoint their progress to the job directory — a killed or
// restarted imcserve resumes every in-flight job from its last
// checkpoint and produces the result an uninterrupted run would have.
//
//	imcserve -addr :8080 -job-dir /var/lib/imcserve/jobs -workers 2
//	curl -X POST localhost:8080/v1/jobs -d '{"dataset":"facebook","scale":0.1,"alg":"UBG","k":10}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imc/internal/job"
	"imc/internal/poolcache"
	"imc/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imcserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown deadline")
		solveTimeout    = flag.Duration("solve-timeout", serve.DefaultSolveTimeout, "per-request deadline on heavy endpoints (negative disables)")
		maxInflight     = flag.Int("max-inflight", 0, "max concurrent heavy requests before shedding with 429 (0 = GOMAXPROCS)")
		jobDir          = flag.String("job-dir", "", "directory for the async job store; empty disables /v1/jobs")
		workers         = flag.Int("workers", 2, "job worker pool size (with -job-dir)")
		poolCacheDir    = flag.String("pool-cache-dir", "", "directory for the shared RIC pool snapshot cache; empty disables caching")
		poolCacheBytes  = flag.Int64("pool-cache-bytes", 1<<30, "pool cache byte budget before LRU eviction (with -pool-cache-dir; ≤ 0 = unlimited)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	cfg := serve.Config{
		SolveTimeout: *solveTimeout,
		MaxInflight:  *maxInflight,
	}

	// The pool cache, when enabled, is shared by the synchronous solve
	// endpoints and the job workers: any solve warms it, any later solve
	// over the same (instance, model, seed) adopts the cached samples and
	// generates only the missing tail.
	var cache *poolcache.Cache
	if *poolCacheDir != "" {
		var err error
		cache, err = poolcache.Open(*poolCacheDir, poolcache.Options{
			MaxBytes: *poolCacheBytes,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			return err
		}
		st := cache.Stats()
		logger.Info("pool cache open", "dir", *poolCacheDir,
			"entries", st.Entries, "bytes", st.Bytes, "budget", *poolCacheBytes)
		cfg.PoolCache = cache
	}

	// The job subsystem, when enabled, opens the store (replaying the
	// journal: jobs left running by a previous process return to pending)
	// and starts the worker pool, which re-enqueues every pending job —
	// resume-on-boot.
	var pool *job.Pool
	if *jobDir != "" {
		store, err := job.Open(*jobDir, nil)
		if err != nil {
			return err
		}
		defer store.Close()
		pool = job.NewPool(store, job.PoolOptions{Workers: *workers, Log: logger, PoolCache: cache})
		pending := len(store.PendingIDs())
		pool.Start()
		logger.Info("job pool started", "dir", *jobDir, "workers", *workers, "resumedPending", pending)
		cfg.JobStore = store
		cfg.JobPool = pool
	}

	handler := serve.NewWithOptions(logger, nil, cfg).Handler()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	// drainJobs checkpoints and parks the running jobs: each worker is
	// interrupted at its next solver batch, the job returns to pending
	// (its latest checkpoint is already durable), and the next boot
	// resumes it.
	drainJobs := func(ctx context.Context) {
		if pool == nil {
			return
		}
		if err := pool.Shutdown(ctx); err != nil {
			logger.Error("job pool drain incomplete", "err", err)
			return
		}
		logger.Info("job pool drained")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		// Stop intake first, then park the jobs, sharing one deadline.
		if err := srv.Shutdown(ctx); err != nil {
			// The deadline passed with requests still in flight; the
			// per-request solve deadline will reap them, but don't leave
			// the listener half-open.
			_ = srv.Close()
			drainJobs(ctx)
			return fmt.Errorf("graceful shutdown: %w", err)
		}
		drainJobs(ctx)
		<-errCh // drain the ListenAndServe result
		return nil
	}
}
