package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imc/internal/lint"
)

// fixtureDir is a package (module-relative) with known determinism
// violations — the lint suite's own golden fixture.
const fixtureDir = "internal/lint/testdata/src/determinism"

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanTree(t *testing.T) {
	code, out, errb := runCmd(t, "internal/clock")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout=%q stderr=%q", code, out, errb)
	}
	if out != "" {
		t.Errorf("clean tree must print nothing, got %q", out)
	}
}

func TestExitFindings(t *testing.T) {
	code, out, _ := runCmd(t, "-check", "determinism", fixtureDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout=%q", code, out)
	}
	if !strings.Contains(out, "[determinism]") {
		t.Errorf("findings output missing check tag: %q", out)
	}
	// Paths are module-relative so baselines survive checkout moves.
	first := strings.SplitN(out, ":", 2)[0]
	if filepath.IsAbs(first) {
		t.Errorf("finding path %q should be module-relative", first)
	}
}

func TestExitUsage(t *testing.T) {
	code, _, errb := runCmd(t, "-check", "nosuchanalyzer")
	if code != 2 {
		t.Fatalf("unknown -check: exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errb)
	}
	if code, _, _ := runCmd(t, "-definitely-not-a-flag"); code != 2 {
		t.Errorf("bad flag: exit = %d, want 2", code)
	}
	if code, _, _ := runCmd(t, "-baseline", "does-not-exist.json", fixtureDir); code != 2 {
		t.Errorf("missing baseline file: exit = %d, want 2", code)
	}
}

func TestListIncludesFlowAnalyzers(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "allocfree", "errflow", "purity", "sharemut",
		"layering", "apisurface", "exhaustive"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %q", name)
		}
	}
}

// TestListGolden locks -list output exactly: analyzer order, names,
// kinds, and doc one-liners are part of the tool's interface.
func TestListGolden(t *testing.T) {
	code, out, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "list.txt"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if out != string(want) {
		t.Errorf("-list output differs from golden testdata/list.txt:\ngot:\n%s\nwant:\n%s", out, want)
	}
	for _, kind := range []string{"syntactic", "flow-sensitive", "interprocedural"} {
		if !strings.Contains(out, kind) {
			t.Errorf("-list output missing kind %q", kind)
		}
	}
}

// TestGraphDump smoke-tests the -graph debug dump: stats header plus
// one entry per function of the fixture package.
func TestGraphDump(t *testing.T) {
	code, out, errb := runCmd(t, "-graph", fixtureDir)
	if code != 0 {
		t.Fatalf("-graph exit = %d, want 0; stderr=%q", code, errb)
	}
	if !strings.HasPrefix(out, "callgraph: nodes=") {
		t.Errorf("-graph output missing stats header: %q", out)
	}
	if !strings.Contains(out, "sccs=") || !strings.Contains(out, "largest-scc=") {
		t.Errorf("-graph output missing SCC stats: %q", out)
	}
	// Running it twice must produce byte-identical output.
	_, again, _ := runCmd(t, "-graph", fixtureDir)
	if out != again {
		t.Error("-graph output is not deterministic across runs")
	}
}

// TestUpdateAPIRequiresFullLoad: regenerating the snapshot from a
// partial package list would silently drop every unloaded package's
// section, so the flag refuses anything but a full-module load.
func TestUpdateAPIRequiresFullLoad(t *testing.T) {
	code, _, errb := runCmd(t, "-update-api", "internal/clock")
	if code != 2 {
		t.Fatalf("-update-api with package args: exit = %d, want 2", code)
	}
	if !strings.Contains(errb, "full-module") {
		t.Errorf("stderr = %q, want full-module refusal", errb)
	}
}

// TestJSONGolden locks the machine-readable schema: field names, module-
// relative paths, and ordering must match the checked-in golden file.
func TestJSONGolden(t *testing.T) {
	code, out, errb := runCmd(t, "-json", "-check", "determinism", fixtureDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr=%q", code, errb)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "determinism.json"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if out != string(want) {
		t.Errorf("-json output differs from golden testdata/determinism.json:\ngot:\n%s\nwant:\n%s", out, want)
	}
	// And it must round-trip through the report schema, call-graph
	// stats included.
	var rep report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not valid report JSON: %v", err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("expected at least one finding in JSON output")
	}
	if rep.CallGraph.Nodes == 0 {
		t.Error("callgraph stats missing from JSON output")
	}
	for _, f := range rep.Findings {
		if f.Check == "" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding with empty field: %+v", f)
		}
	}
}

// perfChecks is the hot-path contract suite introduced in v5.
const perfChecks = "heapescape,inlineable,boundscheck,ifacedispatch"

// TestPerfContractsSelfCheck runs the four performance-contract
// analyzers over the entire module and requires a clean tree: every
// hot-path finding must be either fixed or suppressed with a reasoned
// `//lint:allow`. It doubles as the fact-cache integration test — the
// second run must replay from cache with identical findings.
func TestPerfContractsSelfCheck(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "factcache")

	code, out1, errb := runCmd(t, "-json", "-cache-dir", cacheDir, "-check", perfChecks)
	if code != 0 {
		t.Fatalf("perf-contract self-check: exit = %d, want 0 (unsuppressed hot-path findings below)\n%s%s", code, out1, errb)
	}
	var rep1 report
	if err := json.Unmarshal([]byte(out1), &rep1); err != nil {
		t.Fatalf("self-check -json output: %v", err)
	}
	if len(rep1.Findings) != 0 {
		t.Fatalf("self-check reported %d findings, want 0: %+v", len(rep1.Findings), rep1.Findings)
	}
	if rep1.Cache == nil || !rep1.Cache.Enabled {
		t.Fatal("full-module run should consult the fact cache")
	}
	if rep1.Cache.Hits != 0 || rep1.Cache.Misses == 0 {
		t.Fatalf("cold cache: hits=%d misses=%d, want 0 hits and >0 misses", rep1.Cache.Hits, rep1.Cache.Misses)
	}

	code, out2, _ := runCmd(t, "-json", "-cache-dir", cacheDir, "-check", perfChecks)
	if code != 0 {
		t.Fatalf("cached self-check: exit = %d, want 0", code)
	}
	var rep2 report
	if err := json.Unmarshal([]byte(out2), &rep2); err != nil {
		t.Fatalf("cached -json output: %v", err)
	}
	if rep2.Cache == nil || rep2.Cache.Misses != 0 || rep2.Cache.Hits != rep1.Cache.Misses {
		t.Fatalf("warm cache: %+v, want %d hits and 0 misses", rep2.Cache, rep1.Cache.Misses)
	}
	// Everything except the hit/miss counters must replay bit-for-bit.
	rep2.Cache = rep1.Cache
	norm1, _ := json.Marshal(rep1)
	norm2, _ := json.Marshal(rep2)
	if string(norm1) != string(norm2) {
		t.Errorf("cache replay diverged from live run:\nlive: %s\ncached: %s", norm1, norm2)
	}
}

// layoutChecks is the memory-layout & data-sharing contract suite
// introduced in v6.
const layoutChecks = "structlayout,falseshare,valuecopy,presize"

// TestLayoutContractsSelfCheck runs the four memory-layout analyzers
// over the entire module and requires a clean tree: every layout
// finding must be either fixed (reordered, padded, pre-sized) or
// suppressed with a reasoned `//lint:allow`. The second run must
// replay from the fact cache with identical findings.
func TestLayoutContractsSelfCheck(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "factcache")

	code, out1, errb := runCmd(t, "-json", "-cache-dir", cacheDir, "-check", layoutChecks)
	if code != 0 {
		t.Fatalf("layout-contract self-check: exit = %d, want 0 (unsuppressed layout findings below)\n%s%s", code, out1, errb)
	}
	var rep1 report
	if err := json.Unmarshal([]byte(out1), &rep1); err != nil {
		t.Fatalf("self-check -json output: %v", err)
	}
	if len(rep1.Findings) != 0 {
		t.Fatalf("self-check reported %d findings, want 0: %+v", len(rep1.Findings), rep1.Findings)
	}
	if rep1.Cache == nil || !rep1.Cache.Enabled {
		t.Fatal("full-module run should consult the fact cache")
	}

	code, out2, _ := runCmd(t, "-json", "-cache-dir", cacheDir, "-check", layoutChecks)
	if code != 0 {
		t.Fatalf("cached self-check: exit = %d, want 0", code)
	}
	var rep2 report
	if err := json.Unmarshal([]byte(out2), &rep2); err != nil {
		t.Fatalf("cached -json output: %v", err)
	}
	if rep2.Cache == nil || rep2.Cache.Misses != 0 || rep2.Cache.Hits != rep1.Cache.Misses {
		t.Fatalf("warm cache: %+v, want %d hits and 0 misses", rep2.Cache, rep1.Cache.Misses)
	}
}

// TestCacheToolchainInvalidation: facts computed under one toolchain
// (compiler version + GOOS/GOARCH) must never replay under another —
// the layout analyzers' findings are shaped by the platform size
// model. Simulated by swapping the fingerprint hook between runs.
func TestCacheToolchainInvalidation(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "factcache")

	code, out, _ := runCmd(t, "-json", "-cache-dir", cacheDir, "-check", "determinism")
	if code != 0 {
		t.Fatalf("cold run: exit = %d; out=%s", code, out)
	}
	var cold report
	if err := json.Unmarshal([]byte(out), &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Cache == nil || cold.Cache.Misses == 0 {
		t.Fatalf("cold run should miss, got %+v", cold.Cache)
	}

	code, out, _ = runCmd(t, "-json", "-cache-dir", cacheDir, "-check", "determinism")
	if code != 0 {
		t.Fatalf("warm run: exit = %d", code)
	}
	var warm report
	if err := json.Unmarshal([]byte(out), &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Cache == nil || warm.Cache.Misses != 0 || warm.Cache.Hits != cold.Cache.Misses {
		t.Fatalf("same toolchain should fully hit: %+v", warm.Cache)
	}

	old := toolchainFingerprint
	toolchainFingerprint = func() string { return "go999.9 plan9/mips64" }
	defer func() { toolchainFingerprint = old }()

	code, out, _ = runCmd(t, "-json", "-cache-dir", cacheDir, "-check", "determinism")
	if code != 0 {
		t.Fatalf("post-upgrade run: exit = %d", code)
	}
	var upgraded report
	if err := json.Unmarshal([]byte(out), &upgraded); err != nil {
		t.Fatal(err)
	}
	if upgraded.Cache == nil || upgraded.Cache.Hits != 0 || upgraded.Cache.Misses != cold.Cache.Misses {
		t.Fatalf("changed toolchain must be a full miss: %+v, want 0 hits and %d misses",
			upgraded.Cache, cold.Cache.Misses)
	}
}

// TestBenchShape locks the -bench JSON schema: version tag, toolchain
// identity, top-level key order (declaration order — the file must
// diff cleanly run-over-run), and one row per analyzer in roster
// order, the v6 memory-layout rows included.
func TestBenchShape(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	code, _, errb := runCmd(t, "-bench", path, "internal/clock")
	if code != 0 {
		t.Fatalf("-bench exit = %d; stderr=%q", code, errb)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench output is not a benchReport: %v", err)
	}
	if rep.Schema != "imclint-bench/v2" {
		t.Errorf("schema = %q, want imclint-bench/v2", rep.Schema)
	}
	if rep.GoVersion == "" || !strings.Contains(rep.Platform, "/") {
		t.Errorf("toolchain identity incomplete: goversion=%q platform=%q", rep.GoVersion, rep.Platform)
	}
	if len(rep.Analyzers) != len(lint.All) {
		t.Fatalf("bench has %d analyzer rows, roster has %d", len(rep.Analyzers), len(lint.All))
	}
	for i, a := range lint.All {
		if rep.Analyzers[i].Name != a.Name {
			t.Errorf("row %d = %q, want roster order %q", i, rep.Analyzers[i].Name, a.Name)
		}
	}
	for _, name := range strings.Split(layoutChecks, ",") {
		found := false
		for _, row := range rep.Analyzers {
			if row.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("bench rows missing v6 analyzer %q", name)
		}
	}

	// Key order is part of the contract: no maps anywhere in the shape.
	text := string(data)
	keys := []string{`"schema"`, `"goversion"`, `"platform"`, `"packages"`, `"callgraph"`, `"lockgraph"`, `"analyzers"`}
	last := -1
	for _, k := range keys {
		i := strings.Index(text, k)
		if i < 0 {
			t.Fatalf("bench output missing key %s", k)
		}
		if i < last {
			t.Errorf("key %s out of declaration order", k)
		}
		last = i
	}
}

// TestCacheDisabled: -cache=false must omit the cache report section
// and must not create the cache directory.
func TestCacheDisabled(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "factcache")
	code, out, _ := runCmd(t, "-json", "-cache=false", "-cache-dir", cacheDir, "-check", "determinism")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; out=%s", code, out)
	}
	if strings.Contains(out, "\"cache\"") {
		t.Errorf("-cache=false output still reports cache stats: %s", out)
	}
	if _, err := os.Stat(cacheDir); !os.IsNotExist(err) {
		t.Errorf("-cache=false created %s (stat err=%v)", cacheDir, err)
	}
}

// TestBaselineFilters freezes the current findings into a baseline and
// verifies a re-run reports nothing — the regression-only workflow.
func TestBaselineFilters(t *testing.T) {
	_, snapshot, _ := runCmd(t, "-json", "-check", "determinism", fixtureDir)
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(snapshot), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, _ := runCmd(t, "-baseline", base, "-check", "determinism", fixtureDir)
	if code != 0 {
		t.Fatalf("fully-baselined run: exit = %d, want 0; out=%q", code, out)
	}
	if out != "" {
		t.Errorf("fully-baselined run printed %q, want nothing", out)
	}

	code, out, _ = runCmd(t, "-json", "-baseline", base, "-check", "determinism", fixtureDir)
	var cleanRep report
	if err := json.Unmarshal([]byte(out), &cleanRep); err != nil {
		t.Fatalf("baselined -json output is not a report: %v", err)
	}
	if code != 0 || len(cleanRep.Findings) != 0 {
		t.Errorf("baselined -json: exit=%d findings=%d, want 0 and none", code, len(cleanRep.Findings))
	}

	// A partial baseline must keep reporting the rest — and the
	// pre-v3 bare-array baseline shape must still be accepted.
	var rep report
	if err := json.Unmarshal([]byte(snapshot), &rep); err != nil || len(rep.Findings) < 2 {
		t.Fatalf("need >= 2 findings to test partial baseline, got %d (err=%v)", len(rep.Findings), err)
	}
	fs := rep.Findings
	partial, err := json.Marshal(fs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(base, partial, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runCmd(t, "-baseline", base, "-check", "determinism", fixtureDir)
	if code != 1 {
		t.Fatalf("partially-baselined run: exit = %d, want 1", code)
	}
	if got := strings.Count(out, "\n"); got != len(fs)-1 {
		t.Errorf("partially-baselined run reported %d findings, want %d", got, len(fs)-1)
	}
}
