// Command imclint runs the repository's static-analysis suite:
// twenty-six analyzers built on go/parser, go/ast, and go/types that
// machine-check the determinism, concurrency, allocation, layering,
// numeric, hot-path performance, and memory-layout invariants the
// RIC-sampling guarantees depend on (see DESIGN.md, "Static analysis
// & invariants").
//
// Usage:
//
//	imclint [-check name,name] [-list] [-graph] [-update-api] [-json] [-baseline file] [-bench file] [-cache=false] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 1 when any diagnostic fires, 0 on a clean tree, 2 on usage
// or load errors. Intentional violations are suppressed with a
// `//lint:allow <check>: <reason>` comment on the offending line or the
// line above; the suite reports stale or malformed suppressions itself.
//
// -graph dumps the whole-program call graph (node/edge/SCC stats, then
// one entry per function with its effect summary and resolved callees,
// followed by the lock-order graph: witness edges and any cycles) and
// exits. -update-api regenerates the exported-API snapshot the
// apisurface analyzer checks against. -bench additionally writes a
// BENCH_lint.json-shaped file with per-analyzer wall time, findings
// count, and the call/lock graph sizes.
//
// -json emits a {"callgraph": stats, "findings": [...]} object (the
// findings array is the shape -baseline consumes; -baseline also still
// accepts a bare array), so `imclint -json > lint-baseline.json`
// freezes the current findings and `imclint -baseline
// lint-baseline.json` reports only regressions. Baseline matching
// ignores line numbers: unrelated edits that shift a known finding do
// not resurface it.
//
// Full-module runs consult a per-package fact cache under
// <module>/.imclint-cache/, keyed by a content hash over the module's
// analysis inputs; when nothing has changed the whole report replays
// without parsing a file. -cache=false disables it, and the -json
// report carries hit/miss counts under "cache".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"imc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the machine-readable form of one diagnostic — the schema
// of the -json findings array and of -baseline input.
type finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// key is the baseline identity of a finding: file and message but NOT
// line/col, so a baseline survives unrelated edits above the site.
func (f finding) key() string {
	return f.Check + "\x00" + f.File + "\x00" + f.Message
}

// report is the -json output shape: call-graph stats alongside the
// findings, so the CI artifact records the interprocedural view the
// findings were computed against. Cache is present only when the fact
// cache was consulted (full-module runs with -cache left on).
type report struct {
	CallGraph lint.CallGraphStats `json:"callgraph"`
	LockGraph lint.LockGraphStats `json:"lockgraph"`
	Cache     *cacheStats         `json:"cache,omitempty"`
	Findings  []finding           `json:"findings"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks    = fs.String("check", "", "comma-separated analyzer subset (default: all)")
		list      = fs.Bool("list", false, "list analyzers and exit")
		graph     = fs.Bool("graph", false, "dump the whole-program call graph and exit")
		updateAPI = fs.Bool("update-api", false, "regenerate the exported-API snapshot and exit")
		jsonOut   = fs.Bool("json", false, "emit callgraph stats + findings as JSON")
		baseline  = fs.String("baseline", "", "JSON findings file; matching findings are not reported")
		bench     = fs.String("bench", "", "write per-analyzer wall time + findings counts to this JSON file")
		cacheOn   = fs.Bool("cache", true, "use the per-package fact cache on full-module runs")
		cacheDir  = fs.String("cache-dir", "", "fact-cache directory (default <module>/.imclint-cache)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-14s %-16s %s\n", a.Name, a.Kind, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *checks != "" {
		var ok bool
		analyzers, ok = lint.ByName(*checks)
		if !ok {
			fmt.Fprintf(stderr, "imclint: unknown analyzer in -check %q\n", *checks)
			return 2
		}
	}

	baselined := make(map[string]bool)
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "imclint:", err)
			return 2
		}
		old, err := parseBaseline(data)
		if err != nil {
			fmt.Fprintf(stderr, "imclint: parsing baseline %s: %v\n", *baseline, err)
			return 2
		}
		for _, f := range old {
			baselined[f.key()] = true
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "imclint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "imclint:", err)
		return 2
	}

	// The fact cache only serves full-module lint runs: -graph and
	// -update-api need the live program, -bench must time real work, and
	// a partial package list has no stable manifest to replay.
	var cache *factCache
	if *cacheOn && !*graph && !*updateAPI && *bench == "" && fullModuleLoad(fs.Args()) {
		dir := *cacheDir
		if dir == "" {
			dir = filepath.Join(loader.ModuleDir, ".imclint-cache")
		}
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		// Hash errors (unreadable tree) just disable the cache; the
		// loader will surface anything that actually matters.
		if c, err := openCache(dir, loader.ModuleDir, strings.Join(names, ",")); err == nil {
			cache = c
		}
	}
	if cache != nil {
		if m, cached, ok := cache.replay(); ok {
			rep := report{CallGraph: m.CallGraph, LockGraph: m.LockGraph, Cache: &cache.stats, Findings: []finding{}}
			for _, f := range cached {
				if !baselined[f.key()] {
					rep.Findings = append(rep.Findings, f)
				}
			}
			return emit(stdout, stderr, *jsonOut, rep)
		}
	}

	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "imclint:", err)
		return 2
	}
	prog := lint.NewProgram(loader.ModulePath, loader.ModuleDir, pkgs, fullModuleLoad(fs.Args()))

	if *graph {
		var b strings.Builder
		prog.Graph.Dump(&b)
		prog.DumpLocks(&b)
		io.WriteString(stdout, b.String())
		return 0
	}
	if *updateAPI {
		if !prog.FullModule {
			fmt.Fprintln(stderr, "imclint: -update-api requires a full-module load (run without package arguments)")
			return 2
		}
		if err := os.WriteFile(prog.APISnapPath, lint.WriteAPISnapshot(prog), 0o644); err != nil {
			fmt.Fprintln(stderr, "imclint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", relToModule(loader.ModuleDir, prog.APISnapPath))
		return 0
	}

	findings := []finding{} // non-nil so -json prints [] on a clean tree
	var manifestPkgs []string
	for _, pkg := range pkgs {
		var pkgFindings []finding
		cached := false
		if cache != nil {
			pkgFindings, cached = cache.load(pkg.Path)
		}
		if !cached {
			if active := lint.AnalyzersFor(loader.ModulePath, pkg.Path, analyzers); len(active) > 0 {
				for _, d := range lint.Run(pkg, active) {
					pkgFindings = append(pkgFindings, finding{
						Check:   d.Check,
						File:    relToModule(loader.ModuleDir, d.Pos.Filename),
						Line:    d.Pos.Line,
						Col:     d.Pos.Column,
						Message: d.Message,
					})
				}
			}
		}
		if cache != nil {
			if cached {
				cache.stats.Hits++
			} else {
				cache.stats.Misses++
				cache.store(pkg.Path, pkgFindings)
			}
			manifestPkgs = append(manifestPkgs, pkg.Path)
		}
		for _, f := range pkgFindings {
			if baselined[f.key()] {
				continue
			}
			findings = append(findings, f)
		}
	}
	if cache != nil {
		cache.storeManifest(manifestPkgs, prog.Graph.Stats(), prog.LockStats())
	}

	if *bench != "" {
		if err := writeBench(*bench, prog, pkgs, loader, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "imclint:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s\n", *bench)
	}

	rep := report{CallGraph: prog.Graph.Stats(), LockGraph: prog.LockStats(), Findings: findings}
	if cache != nil {
		rep.Cache = &cache.stats
	}
	return emit(stdout, stderr, *jsonOut, rep)
}

// emit renders the report (JSON or line-per-finding) and returns the
// process exit code — shared by the live path and the cache replay.
func emit(stdout, stderr io.Writer, jsonOut bool, rep report) int {
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "imclint:", err)
			return 2
		}
	} else {
		for _, f := range rep.Findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Check, f.Message)
		}
	}
	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

// benchEntry is one analyzer's row in the -bench report.
type benchEntry struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`
	Millis   float64 `json:"millis"`
	Findings int     `json:"findings"`
}

// benchSchema versions the -bench output shape so downstream tooling
// can reject files it does not understand. v2 added the platform field
// (the layout analyzers' timings are shaped by the size model, which
// is per-platform) alongside the v6 memory-layout analyzer rows.
const benchSchema = "imclint-bench/v2"

// benchReport is the -bench output shape: per-analyzer wall time and
// reported-findings count, plus the sizes of the interprocedural
// structures the expensive analyzers run against. Key order is fixed
// by field declaration order (no maps anywhere in the shape), so two
// runs on the same tree diff cleanly.
type benchReport struct {
	Schema    string              `json:"schema"`
	GoVersion string              `json:"goversion"`
	Platform  string              `json:"platform"`
	Packages  int                 `json:"packages"`
	CallGraph lint.CallGraphStats `json:"callgraph"`
	LockGraph lint.LockGraphStats `json:"lockgraph"`
	Analyzers []benchEntry        `json:"analyzers"`
}

// writeBench times each analyzer in isolation across every loaded
// package (respecting the same per-package gating the real run uses)
// and writes the report to path. Timing runs after the real findings
// pass, so the program-wide caches (call graph, lock info) are warm and
// the numbers measure the analyzers themselves, not one lucky analyzer
// paying for shared construction. Findings counts come from the real
// pass — the timing runs re-execute analyzers one at a time, which
// would double-count suppression hygiene.
func writeBench(path string, prog *lint.Program, pkgs []*lint.Package, loader *lint.Loader, analyzers []*lint.Analyzer, findings []finding) error {
	perCheck := make(map[string]int)
	for _, f := range findings {
		perCheck[f.Check]++
	}
	rep := benchReport{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Packages:  len(pkgs),
		CallGraph: prog.Graph.Stats(),
		LockGraph: prog.LockStats(),
	}
	for _, a := range analyzers {
		start := time.Now()
		for _, pkg := range pkgs {
			if len(lint.AnalyzersFor(loader.ModulePath, pkg.Path, []*lint.Analyzer{a})) == 0 {
				continue
			}
			lint.Run(pkg, []*lint.Analyzer{a})
		}
		rep.Analyzers = append(rep.Analyzers, benchEntry{
			Name:     a.Name,
			Kind:     string(a.Kind),
			Millis:   float64(time.Since(start).Microseconds()) / 1e3,
			Findings: perCheck[a.Name],
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// fullModuleLoad reports whether the package arguments cover the whole
// module — the precondition for apisurface (a partial load cannot tell
// "removed" from "not requested") and -update-api.
func fullModuleLoad(args []string) bool {
	if len(args) == 0 {
		return true
	}
	for _, a := range args {
		if a == "./..." || a == "..." {
			return true
		}
	}
	return false
}

// parseBaseline accepts both baseline shapes: the current
// {"findings": [...]} report object and the pre-v3 bare array.
func parseBaseline(data []byte) ([]finding, error) {
	var rep report
	if err := json.Unmarshal(data, &rep); err == nil && rep.Findings != nil {
		return rep.Findings, nil
	}
	var old []finding
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, err
	}
	return old, nil
}

// relToModule renders path relative to the module root, the stable
// form findings are reported and baselined in.
func relToModule(moduleDir, path string) string {
	if rel, err := filepath.Rel(moduleDir, path); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return path
}
