// Command imclint runs the repository's static-analysis suite: eleven
// analyzers built on go/parser, go/ast, and go/types that machine-check
// the determinism, concurrency, allocation, and numeric invariants the
// RIC-sampling guarantees depend on (see DESIGN.md, "Static analysis &
// invariants").
//
// Usage:
//
//	imclint [-check name,name] [-list] [-json] [-baseline file] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 1 when any diagnostic fires, 0 on a clean tree, 2 on usage
// or load errors. Intentional violations are suppressed with a
// `//lint:allow <check>: <reason>` comment on the offending line or the
// line above; the suite reports stale or malformed suppressions itself.
//
// -json emits findings as a JSON array (the same shape -baseline
// consumes), so `imclint -json > lint-baseline.json` freezes the
// current findings and `imclint -baseline lint-baseline.json` reports
// only regressions. Baseline matching ignores line numbers: unrelated
// edits that shift a known finding do not resurface it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"imc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the machine-readable form of one diagnostic — the schema
// of both -json output and -baseline input.
type finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// key is the baseline identity of a finding: file and message but NOT
// line/col, so a baseline survives unrelated edits above the site.
func (f finding) key() string {
	return f.Check + "\x00" + f.File + "\x00" + f.Message
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("imclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checks   = fs.String("check", "", "comma-separated analyzer subset (default: all)")
		list     = fs.Bool("list", false, "list analyzers and exit")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array")
		baseline = fs.String("baseline", "", "JSON findings file; matching findings are not reported")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *checks != "" {
		var ok bool
		analyzers, ok = lint.ByName(*checks)
		if !ok {
			fmt.Fprintf(stderr, "imclint: unknown analyzer in -check %q\n", *checks)
			return 2
		}
	}

	baselined := make(map[string]bool)
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "imclint:", err)
			return 2
		}
		var old []finding
		if err := json.Unmarshal(data, &old); err != nil {
			fmt.Fprintf(stderr, "imclint: parsing baseline %s: %v\n", *baseline, err)
			return 2
		}
		for _, f := range old {
			baselined[f.key()] = true
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "imclint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "imclint:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "imclint:", err)
		return 2
	}

	findings := []finding{} // non-nil so -json prints [] on a clean tree
	for _, pkg := range pkgs {
		active := lint.AnalyzersFor(loader.ModulePath, pkg.Path, analyzers)
		if len(active) == 0 {
			continue
		}
		for _, d := range lint.Run(pkg, active) {
			f := finding{
				Check:   d.Check,
				File:    relToModule(loader.ModuleDir, d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Message: d.Message,
			}
			if baselined[f.key()] {
				continue
			}
			findings = append(findings, f)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "imclint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Check, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// relToModule renders path relative to the module root, the stable
// form findings are reported and baselined in.
func relToModule(moduleDir, path string) string {
	if rel, err := filepath.Rel(moduleDir, path); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return path
}
