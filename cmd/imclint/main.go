// Command imclint runs the repository's static-analysis suite: six
// analyzers built on go/parser, go/ast, and go/types that machine-check
// the determinism, concurrency, and numeric invariants the RIC-sampling
// guarantees depend on (see DESIGN.md, "Static analysis & invariants").
//
// Usage:
//
//	imclint [-check name,name] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. Exit
// status is 1 when any diagnostic fires, 0 on a clean tree. Intentional
// violations are suppressed with a `//lint:allow <check> — reason`
// comment on the offending line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"

	"imc/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		checks = flag.String("check", "", "comma-separated analyzer subset (default: all)")
		list   = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *checks != "" {
		var ok bool
		analyzers, ok = lint.ByName(*checks)
		if !ok {
			fmt.Fprintf(os.Stderr, "imclint: unknown analyzer in -check %q\n", *checks)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "imclint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imclint:", err)
		return 2
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imclint:", err)
		return 2
	}

	failed := false
	for _, pkg := range pkgs {
		active := lint.AnalyzersFor(loader.ModulePath, pkg.Path, analyzers)
		if len(active) == 0 {
			continue
		}
		for _, d := range lint.Run(pkg, active) {
			fmt.Println(d.String())
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}
