package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"imc/internal/lint"
)

// cacheSchemaVersion tags every cache file. Bump it whenever the entry
// shape, the finding schema, or any analyzer's semantics change in a
// way the content hash cannot see (the analyzer source is part of the
// module, so ordinary analyzer edits invalidate the cache by hash).
const cacheSchemaVersion = "imclint-cache/v1"

// cacheStats is the hit/miss accounting surfaced in the -json report.
type cacheStats struct {
	Enabled bool `json:"enabled"`
	Hits    int  `json:"hits"`
	Misses  int  `json:"misses"`
}

// cacheEntry is one package's cached facts: the findings the analyzers
// produced, BEFORE baseline filtering (the baseline is a view applied
// at report time, not a property of the code).
type cacheEntry struct {
	Schema   string    `json:"schema"`
	Key      string    `json:"key"`
	Package  string    `json:"package"`
	Findings []finding `json:"findings"`
}

// cacheManifest records a complete full-module run: the package list in
// load order plus the graph stats the report needs. When the manifest
// key still matches, imclint can replay the entire report without
// parsing or type-checking a single file.
type cacheManifest struct {
	Schema    string              `json:"schema"`
	Key       string              `json:"key"`
	Packages  []string            `json:"packages"`
	CallGraph lint.CallGraphStats `json:"callgraph"`
	LockGraph lint.LockGraphStats `json:"lockgraph"`
}

// factCache is the on-disk per-package fact cache. Keys fold in the
// cache schema, the Go toolchain version, the active analyzer roster,
// and a content hash over every analysis input in the module — so a
// hit is sound even for interprocedural analyzers, whose findings in
// one package can depend on code in any other.
type factCache struct {
	dir       string
	moduleKey string
	stats     cacheStats
}

// toolchainFingerprint identifies the toolchain the cached facts were
// computed under: compiler version plus target platform. GOOS/GOARCH
// are part of the key because build-constrained files select different
// sources per platform and the go/types size model the layout
// analyzers consult is platform-shaped — facts from one toolchain must
// never replay under another. A variable so tests can simulate a
// toolchain upgrade without installing one.
var toolchainFingerprint = func() string {
	return runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH
}

// openCache hashes the module's analysis inputs and returns a handle.
// checksKey names the active analyzer roster (comma-joined, canonical
// order) so `-check determinism` and a full run never share entries.
func openCache(dir, moduleDir, checksKey string) (*factCache, error) {
	mh, err := moduleHash(moduleDir)
	if err != nil {
		return nil, err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s", cacheSchemaVersion, toolchainFingerprint(), checksKey, mh)
	return &factCache{
		dir:       dir,
		moduleKey: hex.EncodeToString(h.Sum(nil)),
		stats:     cacheStats{Enabled: true},
	}, nil
}

// moduleHash digests every file that can influence a finding: Go
// sources (suppression comments live there too), go.mod/go.sum, and
// .snap files (the apisurface analyzer diffs against a snapshot that
// is not Go source). Hashing testdata as well is deliberately
// conservative — fixture edits invalidate the cache, never the other
// way around.
func moduleHash(moduleDir string) (string, error) {
	type fileDigest struct {
		rel string
		sum [sha256.Size]byte
	}
	var files []fileDigest
	err := filepath.WalkDir(moduleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == ".imclint-cache" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, ".snap") &&
			name != "go.mod" && name != "go.sum" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(moduleDir, path)
		if err != nil {
			return err
		}
		files = append(files, fileDigest{rel: filepath.ToSlash(rel), sum: sha256.Sum256(data)})
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Slice(files, func(i, j int) bool { return files[i].rel < files[j].rel })
	h := sha256.New()
	for _, f := range files {
		fmt.Fprintf(h, "%s\x00%x\n", f.rel, f.sum)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// pkgKey is the cache key for one package's entry: the module key plus
// the package path. The module-wide hash is part of the key on purpose
// — a package's interprocedural findings (layering, lockorder, the
// perf contracts' transitive checks) can change when ANY package does.
func (c *factCache) pkgKey(pkgPath string) string {
	h := sha256.Sum256([]byte(c.moduleKey + "\x00" + pkgPath))
	return hex.EncodeToString(h[:])
}

// entryPath maps a package path to its cache file. The name is a hash,
// not the package path, so nested packages never collide with
// directory separators.
func (c *factCache) entryPath(pkgPath string) string {
	h := sha256.Sum256([]byte(pkgPath))
	return filepath.Join(c.dir, hex.EncodeToString(h[:12])+".json")
}

// load returns the cached findings for pkgPath if the entry exists and
// its key matches the current module state. Any read, decode, or key
// mismatch is simply a miss — the cache is an accelerator, never an
// authority.
func (c *factCache) load(pkgPath string) ([]finding, bool) {
	data, err := os.ReadFile(c.entryPath(pkgPath))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil {
		return nil, false
	}
	if e.Schema != cacheSchemaVersion || e.Package != pkgPath || e.Key != c.pkgKey(pkgPath) {
		return nil, false
	}
	return e.Findings, true
}

// store writes one package's findings. Failures are swallowed: a cache
// that cannot be written must not fail the lint run.
func (c *factCache) store(pkgPath string, findings []finding) {
	if findings == nil {
		findings = []finding{}
	}
	e := cacheEntry{
		Schema:   cacheSchemaVersion,
		Key:      c.pkgKey(pkgPath),
		Package:  pkgPath,
		Findings: findings,
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return
	}
	if os.MkdirAll(c.dir, 0o755) != nil {
		return
	}
	os.WriteFile(c.entryPath(pkgPath), append(data, '\n'), 0o644)
}

// storeManifest records a completed full-module run for replay.
func (c *factCache) storeManifest(pkgs []string, cg lint.CallGraphStats, lg lint.LockGraphStats) {
	m := cacheManifest{
		Schema:    cacheSchemaVersion,
		Key:       c.moduleKey,
		Packages:  pkgs,
		CallGraph: cg,
		LockGraph: lg,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return
	}
	if os.MkdirAll(c.dir, 0o755) != nil {
		return
	}
	os.WriteFile(filepath.Join(c.dir, "manifest.json"), append(data, '\n'), 0o644)
}

// replay attempts the full-hit fast path: if the manifest matches the
// current module state and every per-package entry is intact, it
// returns the complete (unfiltered) findings stream plus the recorded
// graph stats, and the caller can skip loading the module entirely.
func (c *factCache) replay() (*cacheManifest, []finding, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, "manifest.json"))
	if err != nil {
		return nil, nil, false
	}
	var m cacheManifest
	if json.Unmarshal(data, &m) != nil {
		return nil, nil, false
	}
	if m.Schema != cacheSchemaVersion || m.Key != c.moduleKey {
		return nil, nil, false
	}
	var all []finding
	for _, p := range m.Packages {
		fs, ok := c.load(p)
		if !ok {
			return nil, nil, false
		}
		all = append(all, fs...)
	}
	c.stats.Hits = len(m.Packages)
	return &m, all, true
}
