package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"imc/internal/diffusion"
	"imc/internal/expt"
	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/ric"
	"imc/internal/xrand"
)

// coreBenchSchema versions the -benchcore output shape.
const coreBenchSchema = "imc-corebench/v1"

// benchStats is one measurement: wall time and allocation pressure per
// operation, straight from testing.BenchmarkResult.
type benchStats struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// coreBenchmark is one kernel's row. Before is present only when
// -benchbase supplied an earlier run to diff against; Speedup is
// before/after wall time.
type coreBenchmark struct {
	Name    string      `json:"name"`
	Before  *benchStats `json:"before,omitempty"`
	After   benchStats  `json:"after"`
	Speedup float64     `json:"speedup,omitempty"`
}

// coreBenchReport is the BENCH_core.json shape. Key order is fixed by
// field declaration order — the shape contains no maps — so two runs
// diff cleanly.
type coreBenchReport struct {
	Schema     string          `json:"schema"`
	GoVersion  string          `json:"goversion"`
	Dataset    string          `json:"dataset"`
	PoolSize   int             `json:"poolSize"`
	SeedSetK   int             `json:"seedSetK"`
	Benchmarks []coreBenchmark `json:"benchmarks"`
}

// runBenchCore measures the solver kernels the hot-path contracts
// guard — RIC sample generation and the greedy seed-selection scans —
// and writes a machine-readable report. basePath, when non-empty,
// names an earlier -benchcore file whose numbers become the "before"
// column (used to pin the before/after deltas of a kernel change).
func runBenchCore(outPath, basePath string) error {
	const (
		dataset  = "facebook"
		scale    = 0.25
		poolSize = 2048
		k        = 10
	)
	inst, err := expt.BuildInstance(expt.InstanceConfig{Dataset: dataset, Scale: scale, Seed: 42})
	if err != nil {
		return err
	}
	pool, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: 7})
	if err != nil {
		return err
	}
	if err := pool.Generate(poolSize); err != nil {
		return err
	}

	rep := coreBenchReport{
		Schema:    coreBenchSchema,
		GoVersion: runtime.Version(),
		Dataset:   fmt.Sprintf("%s/scale=%g", dataset, scale),
		PoolSize:  poolSize,
		SeedSetK:  k,
	}
	// Best-of-3: scheduler and allocator noise only ever slows a run
	// down, so the minimum wall time is the most repeatable statistic.
	// Allocation counts are deterministic and identical across reps.
	const reps = 3
	add := func(name string, fn func(b *testing.B)) {
		var best benchStats
		for i := 0; i < reps; i++ {
			r := testing.Benchmark(fn)
			s := benchStats{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if i == 0 || s.NsPerOp < best.NsPerOp {
				best = s
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, coreBenchmark{Name: name, After: best})
	}
	seeds, err := maxr.GreedyCHat(pool, k)
	if err != nil {
		return err
	}
	add("RICGenerate/IC", benchGenerate(inst, diffusion.IC))
	add("RICGenerate/LT", benchGenerate(inst, diffusion.LT))
	add("PoolGenerate/IC", benchPoolGenerate(inst, poolSize))
	add("GreedyCHat/k=10", benchGreedy(pool, k, maxr.GreedyCHat))
	add("GreedyNu/k=10", benchGreedy(pool, k, maxr.GreedyNu))
	add("MCBenefit/IC", benchMCBenefit(inst, seeds))

	if basePath != "" {
		data, err := os.ReadFile(basePath)
		if err != nil {
			return err
		}
		var base coreBenchReport
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parsing -benchbase %s: %w", basePath, err)
		}
		before := make(map[string]benchStats, len(base.Benchmarks))
		for _, b := range base.Benchmarks {
			before[b.Name] = b.After
		}
		for i := range rep.Benchmarks {
			b := &rep.Benchmarks[i]
			if prev, ok := before[b.Name]; ok {
				p := prev
				b.Before = &p
				if b.After.NsPerOp > 0 {
					b.Speedup = p.NsPerOp / b.After.NsPerOp
				}
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// benchGenerate times one RIC sample draw (generator hot path: the
// collective reverse BFS plus per-member cover-slot BFS).
func benchGenerate(inst *expt.Instance, model diffusion.Model) func(b *testing.B) {
	return func(b *testing.B) {
		g, err := ric.NewGenerator(inst.G, inst.Part, model)
		if err != nil {
			b.Fatal(err)
		}
		rng := xrand.New(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = g.Generate(rng)
		}
	}
}

// benchPoolGenerate times a full parallel pool generation: the worker
// fan-out writing rawSample slots plus the single-threaded fold into
// samples and the inverted index — the path the memory-layout contracts
// (cache-line-sized rawSample, pre-grown fold appends) guard.
func benchPoolGenerate(inst *expt.Instance, count int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.Generate(count); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchMCBenefit times Monte-Carlo benefit estimation — the parallel
// cascade fan-out whose per-worker partial sums the false-sharing
// contract pads apart.
func benchMCBenefit(inst *expt.Instance, seeds []graph.NodeID) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := diffusion.EstimateBenefit(inst.G, inst.Part, seeds, diffusion.MCOptions{
				Iterations: 512, Seed: 11, Workers: 4,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchGreedy times one full k-seed selection over a fixed pool — the
// candidate-scan / CELF-heap hot loops.
func benchGreedy(pool *ric.Pool, k int, algo func(*ric.Pool, int) ([]graph.NodeID, error)) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := algo(pool, k); err != nil {
				b.Fatal(err)
			}
		}
	}
}
