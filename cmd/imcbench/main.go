// Command imcbench regenerates the paper's evaluation tables and
// figures (Table I, Figures 4–8) against the synthetic dataset analogs
// and prints each as an aligned text table.
//
// Usage:
//
//	imcbench -experiment table1
//	imcbench -experiment fig5 -scale 0.2 -runs 3
//	imcbench -experiment all -scale 0.05
//
// -benchcore instead runs the solver-kernel microbenchmarks (RIC
// sample generation and the greedy seed-selection scans) and writes a
// machine-readable JSON report; -benchbase merges an earlier report in
// as the before column, pinning a kernel change's before/after deltas.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"imc/internal/diffusion"
	"imc/internal/expt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "imcbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "table1|fig4|fig5|fig6|fig7|fig8|convergence|extensions|all|report")
		scale      = flag.Float64("scale", 0.1, "dataset scale in (0, 1]")
		runs       = flag.Int("runs", 1, "repetitions to average (paper: 10)")
		seed       = flag.Uint64("seed", 42, "random seed")
		maxSamp    = flag.Int("maxsamples", 1<<16, "RIC sample cap per run")
		evalTMax   = flag.Int("evaltmax", 1<<16, "benefit-evaluation sample cap")
		btRoots    = flag.Int("btroots", 64, "BT root cap inside MB (0 = all)")
		ksFlag     = flag.String("ks", "", "comma-separated k sweep override, e.g. 5,10,20")
		capsFlag   = flag.String("caps", "", "comma-separated size-cap sweep override (fig4)")
		dsFlag     = flag.String("datasets", "", "comma-separated dataset override")
		format     = flag.String("format", "table", "output format: table|csv|plot")
		model      = flag.String("model", "IC", "propagation model: IC|LT")
		scaleFor   = flag.String("scalefor", "", "per-dataset scale overrides, e.g. facebook=1.0,pokec=0.05")
		checkpoint = flag.String("checkpoint", "", "JSONL checkpoint file: finished cells are persisted and reused on re-runs")
		benchCore  = flag.String("benchcore", "", "write solver-kernel microbenchmarks (ns/op, allocs/op) to this JSON file and exit")
		benchBase  = flag.String("benchbase", "", "earlier -benchcore file; its numbers become the before column")
	)
	flag.Parse()

	if *benchCore != "" {
		return runBenchCore(*benchCore, *benchBase)
	}

	diffModel := diffusion.IC
	if strings.EqualFold(*model, "LT") {
		diffModel = diffusion.LT
	}
	cfg := expt.Config{
		Scale: *scale,
		Run: expt.RunConfig{
			Seed:       *seed,
			Runs:       *runs,
			MaxSamples: *maxSamp,
			EvalTMax:   *evalTMax,
			BTMaxRoots: *btRoots,
			Model:      diffModel,
		},
	}
	var err error
	if cfg.Ks, err = parseInts(*ksFlag); err != nil {
		return fmt.Errorf("bad -ks: %w", err)
	}
	if cfg.SizeCaps, err = parseInts(*capsFlag); err != nil {
		return fmt.Errorf("bad -caps: %w", err)
	}
	if *dsFlag != "" {
		cfg.Datasets = strings.Split(*dsFlag, ",")
	}
	if *scaleFor != "" {
		cfg.ScaleFor = make(map[string]float64)
		for _, pair := range strings.Split(*scaleFor, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return fmt.Errorf("bad -scalefor entry %q (want name=scale)", pair)
			}
			s, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("bad -scalefor scale in %q: %w", pair, err)
			}
			cfg.ScaleFor[name] = s
		}
	}

	if *checkpoint != "" {
		ck, err := expt.OpenCheckpoint(*checkpoint)
		if err != nil {
			return err
		}
		defer ck.Close()
		if n := ck.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "imcbench: resuming, %d cells already complete\n", n)
		}
		cfg.Checkpoint = ck
	}
	if *experiment == "report" {
		return expt.WriteReport(os.Stdout, cfg)
	}
	targets := []string{*experiment}
	if *experiment == "all" {
		targets = []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8"}
	}
	for _, target := range targets {
		if err := runOne(target, cfg, *format); err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		fmt.Println()
	}
	return nil
}

func runOne(target string, cfg expt.Config, format string) error {
	if target == "table1" {
		rows, err := expt.Table1(cfg)
		if err != nil {
			return err
		}
		return expt.RenderTable1(os.Stdout, rows)
	}
	var (
		rows  []expt.Row
		title string
		err   error
	)
	switch target {
	case "fig4":
		title = "Fig 4: benefit vs community structure (k=10)"
		rows, err = expt.Fig4(cfg)
	case "fig5":
		title = "Fig 5: benefit vs k, regular thresholds (h=50%)"
		rows, err = expt.Fig5(cfg)
	case "fig6":
		title = "Fig 6: benefit vs k, bounded thresholds (h=2)"
		rows, err = expt.Fig6(cfg)
	case "fig7":
		title = "Fig 7: seed-selection runtime on the large datasets"
		rows, err = expt.Fig7(cfg)
	case "fig8":
		title = "Fig 8: UBG sandwich ratio c(S_ν)/ν(S_ν) vs k"
		rows, err = expt.Fig8(cfg)
	case "convergence":
		title = "Convergence: ĉ_R vs pool size (ratio column = relative error to MC)"
		rows, err = expt.Convergence(cfg)
	case "extensions":
		title = "Extensions: UBG+LS and DD vs the paper's solvers (bounded thresholds)"
		rows, err = expt.Extensions(cfg)
	default:
		return fmt.Errorf("unknown experiment %q", target)
	}
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		return expt.RenderRowsCSV(os.Stdout, rows)
	case "plot":
		return expt.RenderRowsPlot(os.Stdout, title, rows)
	default:
		return expt.RenderRows(os.Stdout, title, rows)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
