package imc_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"imc"
)

func TestFacadeKCoreNMIAndRMAT(t *testing.T) {
	g, err := imc.RMAT(8, 1500, 0.57, 0.19, 0.19, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 256 {
		t.Fatalf("RMAT n = %d", g.NumNodes())
	}
	core := imc.KCore(g)
	if len(core) != 256 {
		t.Fatalf("core labels = %d", len(core))
	}
	lp, err := imc.LabelPropagation(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := imc.Louvain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nmi := imc.NMI(lp, lv); nmi < 0 || nmi > 1 {
		t.Fatalf("NMI = %g out of [0,1]", nmi)
	}
	if nmi := imc.NMI(lv, lv); math.Abs(nmi-1) > 1e-12 {
		t.Fatalf("self NMI = %g", nmi)
	}
}

func TestFacadeTraceAndDegreeDiscount(t *testing.T) {
	b := imc.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rounds := imc.TraceCascade(g, []imc.NodeID{0}, 1)
	if len(rounds) != 3 {
		t.Fatalf("trace rounds = %d, want 3", len(rounds))
	}
	seeds, err := imc.DegreeDiscount(g, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 {
		t.Fatalf("degree-discount seeds = %v", seeds)
	}
}

func TestFacadeIMAndIMMSolvers(t *testing.T) {
	g, err := imc.BarabasiAlbert(200, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 0)
	ssa, err := imc.SolveIM(g, imc.RISOptions{K: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	imm, err := imc.SolveIMM(g, imc.RISOptions{K: 4, Seed: 7, MaxSamples: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(ssa.Seeds) != 4 || len(imm.Seeds) != 4 {
		t.Fatalf("seed counts: ssa=%d imm=%d", len(ssa.Seeds), len(imm.Seeds))
	}
	if ssa.SpreadEstimate <= 0 || imm.SpreadEstimate <= 0 {
		t.Fatal("spread estimates missing")
	}
}

func TestFacadePartitionJSONRoundTrip(t *testing.T) {
	part, err := imc.NewPartition(6, [][]imc.NodeID{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	var buf bytes.Buffer
	if err := imc.WritePartitionJSON(&buf, part); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"threshold\": 2") {
		t.Fatalf("json missing threshold:\n%s", buf.String())
	}
	back, err := imc.ReadPartitionJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumCommunities() != 2 || back.Community(0).Threshold != 2 {
		t.Fatal("partition JSON round trip mangled")
	}
}

func TestFacadeBinaryGraphRoundTrip(t *testing.T) {
	g, err := imc.ErdosRenyi(50, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := imc.WriteBinaryGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := imc.ReadBinaryGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip changed edges")
	}
}

func TestFacadeBudgeted(t *testing.T) {
	g, part := buildSmallInstance(t)
	res, err := imc.SolveBudgeted(g, part, imc.UniformCost, 3, 2000, imc.PoolOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) > 3 {
		t.Fatalf("budget exceeded: %v", res.Seeds)
	}
}

func buildSmallInstance(t *testing.T) (*imc.Graph, *imc.Partition) {
	t.Helper()
	g, err := imc.BuildDataset("facebook", 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 42)
	part, err := imc.Louvain(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}
