module imc

go 1.22
