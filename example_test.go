package imc_test

import (
	"fmt"

	"imc"
)

// ExampleSolve runs the full IMCAF pipeline on a small deterministic
// instance: two chained communities where seeding node 0 activates
// everything.
func ExampleSolve() {
	b := imc.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g, _ := b.Build()

	part, _ := imc.NewPartition(4, [][]imc.NodeID{{0, 1}, {2, 3}})
	part.SetBoundedThresholds(2)
	part.SetUniformBenefits(1)

	sol, _ := imc.Solve(g, part, imc.NewUBG(), imc.Options{
		K: 1, Eps: 0.3, Delta: 0.3, Seed: 1, MaxSamples: 1 << 12,
	})
	fmt.Println("seeds:", sol.Seeds)
	fmt.Printf("benefit: %.0f of 2\n", sol.CHat)
	// Output:
	// seeds: [0]
	// benefit: 2 of 2
}

// ExampleNewPool estimates c(S) directly from a RIC sample pool.
func ExampleNewPool() {
	b := imc.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	g, _ := b.Build()

	part, _ := imc.NewPartition(3, [][]imc.NodeID{{1, 2}})
	part.SetBoundedThresholds(2)
	part.SetUniformBenefits(1)

	pool, _ := imc.NewPool(g, part, imc.PoolOptions{Seed: 1})
	_ = pool.Generate(1000)
	// Node 0 reaches both members via weight-1 edges: ĉ({0}) = 1.
	fmt.Printf("c({0}) = %.0f\n", pool.CHat([]imc.NodeID{0}))
	fmt.Printf("c({1}) = %.0f\n", pool.CHat([]imc.NodeID{1}))
	// Output:
	// c({0}) = 1
	// c({1}) = 0
}

// ExampleKS shows the knapsack baseline on communities with unequal
// costs and benefits.
func ExampleKS() {
	b := imc.NewBuilder(5)
	g, _ := b.Build() // no edges: pure knapsack

	part, _ := imc.NewPartition(5, [][]imc.NodeID{{0, 1}, {2, 3, 4}})
	part.SetFractionThresholds(1) // must seed whole community
	part.SetUniformBenefits(1)
	_ = part.SetBenefit(1, 5)

	// Budget 3 fits only the 3-node community worth 5.
	seeds, _ := imc.KS(g, part, 3)
	fmt.Println(seeds)
	// Output:
	// [2 3 4]
}

// ExamplePartition demonstrates threshold and benefit policies.
func ExamplePartition() {
	part, _ := imc.NewPartition(6, [][]imc.NodeID{{0, 1, 2, 3}, {4, 5}})
	part.SetFractionThresholds(0.5)
	part.SetPopulationBenefits()
	for i := 0; i < part.NumCommunities(); i++ {
		c := part.Community(i)
		fmt.Printf("community %d: size=%d h=%d b=%.0f\n", i, len(c.Members), c.Threshold, c.Benefit)
	}
	// Output:
	// community 0: size=4 h=2 b=4
	// community 1: size=2 h=1 b=2
}
