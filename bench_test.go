package imc

import (
	"io"
	"testing"

	"imc/internal/expt"
	"imc/internal/maxr"
	"imc/internal/ric"
	"imc/internal/xrand"
)

func newBenchRNG() *xrand.RNG { return xrand.New(1) }

// benchConfig keeps per-iteration work small enough for testing.B while
// still exercising the full per-figure pipeline. cmd/imcbench runs the
// same code at paper scale.
func benchConfig() expt.Config {
	return expt.Config{
		Scale: 0.03,
		Run: expt.RunConfig{
			Seed:       1,
			Runs:       1,
			MaxSamples: 1 << 12,
			EvalTMax:   1 << 12,
			BTMaxRoots: 8,
		},
		Ks:       []int{4},
		SizeCaps: []int{4},
		Datasets: []string{"facebook", "wikivote"},
	}
}

// BenchmarkTable1Datasets regenerates Table I (dataset statistics).
func BenchmarkTable1Datasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := expt.RenderTable1(io.Discard, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4CommunityStructure regenerates Fig. 4 (benefit vs
// community formation and size cap).
func BenchmarkFig4CommunityStructure(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5RegularBenefit regenerates Fig. 5 (benefit vs k, regular
// thresholds).
func BenchmarkFig5RegularBenefit(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6BoundedBenefit regenerates Fig. 6 (benefit vs k, bounded
// thresholds, incl. MB).
func BenchmarkFig6BoundedBenefit(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Runtime regenerates Fig. 7 (seed-selection runtime).
func BenchmarkFig7Runtime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8UBGRatio regenerates Fig. 8 (UBG sandwich ratio vs k).
func BenchmarkFig8UBGRatio(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"facebook"}
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergenceEstimator runs the estimator-quality experiment
// (the appendix-style addition beyond the paper's figures).
func BenchmarkConvergenceEstimator(b *testing.B) {
	cfg := benchConfig()
	cfg.Run.MaxSamples = 1 << 12
	for i := 0; i < b.N; i++ {
		if _, err := expt.Convergence(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// benchPool builds a fixed mid-sized pool once per benchmark.
func benchPool(b *testing.B, bounded bool) *ric.Pool {
	b.Helper()
	inst, err := expt.BuildInstance(expt.InstanceConfig{
		Dataset: "facebook",
		Scale:   0.2,
		Bounded: bounded,
		Seed:    5,
	})
	if err != nil {
		b.Fatal(err)
	}
	pool, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	if err := pool.Generate(4000); err != nil {
		b.Fatal(err)
	}
	return pool
}

// BenchmarkAblationGreedyNuCELF measures the CELF lazy greedy on ν_R —
// compare against BenchmarkAblationGreedyCHatPlain to see what lazy
// evaluation buys on the submodular half of UBG.
func BenchmarkAblationGreedyNuCELF(b *testing.B) {
	pool := benchPool(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxr.GreedyNu(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGreedyCHatPlain measures plain greedy on the
// non-submodular ĉ_R (full re-evaluation per round, the sound choice).
func BenchmarkAblationGreedyCHatPlain(b *testing.B) {
	pool := benchPool(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := maxr.GreedyCHat(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMAFS1Only / S2Only / Full separate MAF's two halves
// (Alg. 3 keeps the better; the paper notes S2 shines in practice while
// only S1 carries the guarantee).
func BenchmarkAblationMAFS1Only(b *testing.B) {
	pool := benchPool(b, true)
	m := maxr.MAF{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveS1Only(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMAFS2Only(b *testing.B) {
	pool := benchPool(b, true)
	m := maxr.MAF{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveS2Only(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMAFFull(b *testing.B) {
	pool := benchPool(b, true)
	m := maxr.MAF{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUBGSandwich measures the full sandwich (both greedy
// passes) against its single-objective halves above.
func BenchmarkAblationUBGSandwich(b *testing.B) {
	pool := benchPool(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (maxr.UBG{}).Solve(pool, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBTRootCap contrasts BT's faithful full root scan
// with a capped scan — the knob that keeps MB feasible on large pools
// (the paper's MB timed out on Pokec for exactly this cost).
func BenchmarkAblationBTRootCap(b *testing.B) {
	pool := benchPool(b, true)
	for _, roots := range []struct {
		name string
		cap  int
	}{{"cap16", 16}, {"cap64", 64}} {
		b.Run(roots.name, func(b *testing.B) {
			solver := maxr.BT{MaxRoots: roots.cap}
			for i := 0; i < b.N; i++ {
				if _, err := solver.Solve(pool, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLocalSearch measures the 1-swap refinement pass on
// top of MAF — the quality/cost trade beyond the paper's solvers.
func BenchmarkAblationLocalSearch(b *testing.B) {
	pool := benchPool(b, true)
	base, err := (maxr.MAF{}).Solve(pool, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maxr.LocalSearch(pool, base.Seeds, 0)
	}
}

// BenchmarkAblationBTDepth sweeps BT^(d) recursion depth (paper §IV-C):
// each extra level multiplies the root scans.
func BenchmarkAblationBTDepth(b *testing.B) {
	pool := benchPool(b, true)
	for _, depth := range []int{2, 3} {
		b.Run("d="+string(rune('0'+depth)), func(b *testing.B) {
			solver := maxr.BT{MaxRoots: 8, Depth: depth}
			for i := 0; i < b.N; i++ {
				if _, err := solver.Solve(pool, 6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRICSharedVsNaive compares Alg. 1's shared-edge-state
// sampling against the naive per-member variant. The naive variant is
// also statistically biased (see ric.TestNaiveSamplingIsBiased); this
// bench shows the shared construction is no slower either.
func BenchmarkAblationRICSharedVsNaive(b *testing.B) {
	inst, err := expt.BuildInstance(expt.InstanceConfig{Dataset: "facebook", Scale: 0.2, Bounded: true, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("shared", func(b *testing.B) {
		gen, err := ric.NewGenerator(inst.G, inst.Part, IC)
		if err != nil {
			b.Fatal(err)
		}
		root := newBenchRNG()
		for i := 0; i < b.N; i++ {
			gen.Generate(root.Split(uint64(i)))
		}
	})
	b.Run("naive", func(b *testing.B) {
		gen, err := ric.NewGenerator(inst.G, inst.Part, IC)
		if err != nil {
			b.Fatal(err)
		}
		root := newBenchRNG()
		for i := 0; i < b.N; i++ {
			gen.GenerateNaive(root.Split(uint64(i)))
		}
	})
}

// --- Facade-level end-to-end benches. ---

// BenchmarkSolveUBGEndToEnd runs the full IMCAF loop (sampling,
// solving, Estimate verification) through the public API.
func BenchmarkSolveUBGEndToEnd(b *testing.B) {
	g, err := BuildDataset("facebook", 0.1, 3)
	if err != nil {
		b.Fatal(err)
	}
	g = ApplyWeights(g, WeightedCascade, 0, 3)
	part, err := Louvain(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	part, err = part.SplitBySize(8, 3)
	if err != nil {
		b.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(g, part, NewUBG(), Options{K: 5, Eps: 0.3, Delta: 0.3, Seed: 3, MaxSamples: 1 << 13}); err != nil {
			b.Fatal(err)
		}
	}
}
