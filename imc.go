// Package imc is a library for Influence Maximization at the Community
// level (IMC), reproducing "Influence Maximization at Community Level:
// A New Challenge with Non-submodularity" (Nguyen, Zhou, Thai — ICDCS
// 2019).
//
// Given a weighted social graph under the Independent Cascade model and
// a set of disjoint communities — each with an activation threshold h
// and a benefit b — IMC asks for k seed users maximizing the expected
// benefit of communities that end up with at least h activated members.
// Unlike classic influence maximization the objective is neither
// submodular nor supermodular, and it is inapproximable within
// O(r^{1/2(loglog r)^c}) under the exponential time hypothesis.
//
// The package exposes the paper's full pipeline:
//
//   - Graph construction (NewBuilder, ReadEdgeList, ApplyWeights) and
//     synthetic generators (BuildDataset, BarabasiAlbert, ...).
//   - Community formation: Louvain detection, random partitioning, the
//     size-cap splitting rule, and threshold/benefit policies.
//   - RIC sampling (Reverse Influenceable Community) — the paper's
//     estimator for community benefit (NewPool).
//   - Four MAXR solvers: UBG (sandwich upper-bound greedy), MAF
//     (most-appearance-first), BT (bounded-threshold) and MB (MAF∨BT,
//     tight to the inapproximability bound).
//   - The IMCAF framework (Solve), wrapping any solver into an
//     α(1−ε)-approximation with probability ≥ 1−δ via adaptive
//     stop-and-stare sampling and Dagum stopping-rule verification.
//   - Baselines (HBC, KS, classic IM) and forward Monte-Carlo
//     evaluation (EstimateBenefit) for end-to-end validation.
//
// Quick start:
//
//	g, _ := imc.BuildDataset("facebook", 1.0, 42)
//	g = imc.ApplyWeights(g, imc.WeightedCascade, 0, 0)
//	part, _ := imc.Louvain(g, 42)
//	part, _ = part.SplitBySize(8, 42)
//	part.SetBoundedThresholds(2)
//	part.SetPopulationBenefits()
//	sol, _ := imc.Solve(g, part, imc.NewUBG(), imc.Options{K: 10, Eps: 0.2, Delta: 0.2})
//	fmt.Println(sol.Seeds, sol.CHat)
package imc

import (
	"io"

	"imc/internal/baselines"
	"imc/internal/community"
	"imc/internal/core"
	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/ric"
	"imc/internal/ris"
	"imc/internal/xrand"
)

// Graph and related types.
type (
	// Graph is an immutable directed weighted social graph in CSR form.
	Graph = graph.Graph
	// NodeID identifies a node in [0, NumNodes()).
	NodeID = graph.NodeID
	// Edge is one weighted directed edge.
	Edge = graph.Edge
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// WeightScheme selects how edge probabilities are assigned.
	WeightScheme = graph.WeightScheme
	// GraphStats summarizes graph shape.
	GraphStats = graph.Stats
)

// Weight schemes.
const (
	// WeightedCascade sets w(u,v) = 1/d_in(v) (the paper's setting).
	WeightedCascade = graph.WeightedCascade
	// ConstantWeight sets every edge to one probability.
	ConstantWeight = graph.ConstantWeight
	// Trivalency draws weights from {0.1, 0.01, 0.001}.
	Trivalency = graph.Trivalency
)

// Community types.
type (
	// Partition is a set of disjoint communities with thresholds and
	// benefits.
	Partition = community.Partition
	// Community is one disjoint user set.
	Community = community.Community
)

// Diffusion types.
type (
	// Model selects the propagation model (IC or LT).
	Model = diffusion.Model
	// MCOptions configures forward Monte-Carlo estimation.
	MCOptions = diffusion.MCOptions
)

// Propagation models.
const (
	// IC is the Independent Cascade model.
	IC = diffusion.IC
	// LT is the Linear Threshold model.
	LT = diffusion.LT
)

// Solver and framework types.
type (
	// Solver is a MAXR approximation algorithm pluggable into Solve.
	Solver = maxr.Solver
	// SolverResult is a solved MAXR instance.
	SolverResult = maxr.Result
	// Pool is a collection of RIC samples with evaluators.
	Pool = ric.Pool
	// PoolOptions configures RIC pool construction.
	PoolOptions = ric.PoolOptions
	// Options configures an IMCAF run.
	Options = core.Options
	// Solution is an IMCAF outcome.
	Solution = core.Solution
	// StopReason explains IMCAF termination.
	StopReason = core.StopReason
	// EstimateOptions configures the Estimate procedure.
	EstimateOptions = core.EstimateOptions
	// EstimateResult is an Estimate outcome.
	EstimateResult = core.EstimateResult
	// RISOptions configures the classic IM baseline solver.
	RISOptions = ris.Options
)

// Graph construction.

// NewBuilder returns a graph builder for n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n nodes from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a "u v [w]" edge list (lines starting with '#' or
// '%' are comments).
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	return graph.ReadEdgeList(r, directed)
}

// WriteEdgeList emits a graph as "u v w" lines.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// WriteBinaryGraph serializes a graph in the compact binary format
// (magic "IMCG"), roughly 3× smaller and 10× faster to load than the
// text edge list.
func WriteBinaryGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ReadBinaryGraph loads a graph written by WriteBinaryGraph.
func ReadBinaryGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WeaklyConnectedComponentsOf labels each node with its weak-component
// ID and returns the labels and the component count.
func WeaklyConnectedComponentsOf(g *Graph) ([]int32, int) {
	return graph.WeaklyConnectedComponents(g)
}

// StronglyConnectedComponentsOf labels each node with its SCC ID
// (Tarjan) and returns the labels and the SCC count.
func StronglyConnectedComponentsOf(g *Graph) ([]int32, int) {
	return graph.StronglyConnectedComponents(g)
}

// LargestComponentSize returns the size of the biggest component for a
// labeling from either components function.
func LargestComponentSize(label []int32, count int) int {
	return graph.LargestComponentSize(label, count)
}

// KCore computes each node's core number in the undirected projection
// (Matula–Beck peeling).
func KCore(g *Graph) []int32 { return graph.KCore(g) }

// NMI scores the agreement of two partitions by normalized mutual
// information (1 = identical up to relabeling).
func NMI(a, b *Partition) float64 { return community.NMI(a, b) }

// RMAT generates a stochastic Kronecker (R-MAT) graph with 2^levels
// nodes and ≈m edges from initiator probabilities (a, b, c, d).
func RMAT(levels, m int, a, b, c, d float64, seed uint64) (*Graph, error) {
	return gen.RMAT(levels, m, a, b, c, d, seed)
}

// ApplyWeights returns a copy of g with edge probabilities reassigned
// by the scheme (p is used by ConstantWeight, seed by Trivalency).
func ApplyWeights(g *Graph, scheme WeightScheme, p float64, seed uint64) *Graph {
	return graph.ApplyWeights(g, scheme, p, seed)
}

// Synthetic generators (see internal/gen for the full catalog).

// BuildDataset generates a named synthetic analog of one of the
// paper's SNAP datasets ("facebook", "wikivote", "epinions", "dblp",
// "pokec") at the given scale in (0, 1].
func BuildDataset(name string, scale float64, seed uint64) (*Graph, error) {
	return gen.BuildDataset(name, scale, seed)
}

// DatasetNames lists the dataset registry keys in Table I order.
func DatasetNames() []string { return gen.Names() }

// BarabasiAlbert generates a preferential-attachment graph.
func BarabasiAlbert(n, m int, seed uint64) (*Graph, error) { return gen.BarabasiAlbert(n, m, seed) }

// WattsStrogatz generates a small-world graph.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*Graph, error) {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// SBM generates a planted-partition graph with the given block count.
func SBM(n, blocks int, inDeg, outDeg float64, seed uint64) (*Graph, error) {
	return gen.SBM(n, blocks, inDeg, outDeg, seed)
}

// ErdosRenyi generates a uniform random directed graph.
func ErdosRenyi(n int, avgOutDeg float64, seed uint64) (*Graph, error) {
	return gen.ErdosRenyi(n, avgOutDeg, seed)
}

// Community formation.

// NewPartition builds a partition over n nodes from explicit member
// sets.
func NewPartition(n int, memberSets [][]NodeID) (*Partition, error) {
	return community.New(n, memberSets)
}

// Louvain detects communities by modularity maximization.
func Louvain(g *Graph, seed uint64) (*Partition, error) { return community.Louvain(g, seed) }

// RandomCommunities partitions n nodes uniformly into r communities.
func RandomCommunities(n, r int, seed uint64) (*Partition, error) {
	return community.Random(n, r, seed)
}

// LabelPropagation detects communities by label propagation — a
// near-linear alternative to Louvain for very large graphs.
func LabelPropagation(g *Graph, maxRounds int, seed uint64) (*Partition, error) {
	return community.LabelPropagation(g, maxRounds, seed)
}

// Modularity computes the undirected-projection modularity of a
// partition.
func Modularity(g *Graph, p *Partition) float64 { return community.Modularity(g, p) }

// WritePartitionJSON serializes a partition (members, thresholds,
// benefits) as JSON.
func WritePartitionJSON(w io.Writer, p *Partition) error { return community.WriteJSON(w, p) }

// ReadPartitionJSON loads a partition written by WritePartitionJSON.
func ReadPartitionJSON(r io.Reader) (*Partition, error) { return community.ReadJSON(r) }

// RIC sampling.

// NewPool creates an empty RIC sample pool over (g, part).
func NewPool(g *Graph, part *Partition, opts PoolOptions) (*Pool, error) {
	return ric.NewPool(g, part, opts)
}

// MAXR solvers.

// NewUBG returns the Upper-Bound Greedy (sandwich) solver.
func NewUBG() Solver { return maxr.UBG{} }

// NewMAF returns the Most-Appearance-First solver.
func NewMAF(seed uint64) Solver { return maxr.MAF{Seed: seed} }

// NewBT returns the bounded-threshold solver; maxRoots caps the root
// scan (0 = all), depth is the threshold bound d (0 = 2).
func NewBT(maxRoots, depth int) Solver { return maxr.BT{MaxRoots: maxRoots, Depth: depth} }

// NewMB returns the combined MAF∨BT solver with Θ(√((1−1/e)/r))
// guarantee for thresholds ≤ 2.
func NewMB(seed uint64, maxRoots int) Solver {
	return maxr.MB{MAF: maxr.MAF{Seed: seed}, BT: maxr.BT{MaxRoots: maxRoots}}
}

// CostFunc prices a node for the budgeted (cost-aware) variant.
type CostFunc = maxr.CostFunc

// UniformCost prices every node at 1.
func UniformCost(u NodeID) float64 { return maxr.UniformCost(u) }

// DegreeCost prices nodes proportionally to out-degree plus one.
func DegreeCost(g *Graph, unit float64) CostFunc { return maxr.DegreeCost(g, unit) }

// SolveBudgeted picks a seed set of total cost ≤ budget maximizing the
// estimated community benefit over a fresh pool of numSamples RIC
// samples — the cost-aware extension of IMC.
func SolveBudgeted(g *Graph, part *Partition, cost CostFunc, budget float64, numSamples int, opts PoolOptions) (SolverResult, error) {
	pool, err := ric.NewPool(g, part, opts)
	if err != nil {
		return SolverResult{}, err
	}
	if numSamples < 1 {
		numSamples = 1
	}
	if err := pool.Generate(numSamples); err != nil {
		return SolverResult{}, err
	}
	return maxr.SolveBudgeted(pool, cost, budget)
}

// IMCAF framework.

// Solve runs the IMC Algorithmic Framework with the given MAXR solver.
func Solve(g *Graph, part *Partition, solver Solver, opts Options) (Solution, error) {
	return core.Solve(g, part, solver, opts)
}

// SolveFixed runs a solver against a fixed-size RIC pool.
func SolveFixed(g *Graph, part *Partition, solver Solver, k, numSamples int, opts Options) (Solution, error) {
	return core.SolveFixed(g, part, solver, k, numSamples, opts)
}

// Estimate runs the paper's Alg. 6 verification estimator for c(S).
func Estimate(g *Graph, part *Partition, seeds []NodeID, opts EstimateOptions) (EstimateResult, error) {
	return core.Estimate(g, part, seeds, opts)
}

// Forward Monte-Carlo evaluation.

// EstimateBenefit Monte-Carlo-estimates c(S) with forward cascades.
func EstimateBenefit(g *Graph, part *Partition, seeds []NodeID, opts MCOptions) (float64, error) {
	return diffusion.EstimateBenefit(g, part, seeds, opts)
}

// EstimateSpread Monte-Carlo-estimates the expected activation count.
func EstimateSpread(g *Graph, seeds []NodeID, opts MCOptions) (float64, error) {
	return diffusion.EstimateSpread(g, seeds, opts)
}

// TraceRound is one round of a traced cascade.
type TraceRound = diffusion.TraceRound

// TraceCascade simulates one IC cascade and reports the nodes
// activated in each discrete round.
func TraceCascade(g *Graph, seeds []NodeID, seed uint64) []TraceRound {
	return diffusion.Trace(g, seeds, xrand.New(seed))
}

// Baselines.

// HBC selects seeds by highest beneficial connection.
func HBC(g *Graph, part *Partition, k int) ([]NodeID, error) { return baselines.HBC(g, part, k) }

// KS selects seeds by an exact knapsack over communities.
func KS(g *Graph, part *Partition, k int) ([]NodeID, error) { return baselines.KS(g, part, k) }

// IM selects seeds by classic influence maximization (RIS).
func IM(g *Graph, part *Partition, k int, opts RISOptions) ([]NodeID, error) {
	return baselines.IM(g, part, k, opts)
}

// SolveIM runs the SSA-style IM solver directly, returning spread
// diagnostics alongside the seeds.
func SolveIM(g *Graph, opts RISOptions) (ris.Solution, error) { return ris.Solve(g, opts) }

// SolveIMM runs the IMM influence-maximization algorithm (Tang et al.
// 2014), the other state-of-the-art IM framework the paper cites.
func SolveIMM(g *Graph, opts RISOptions) (ris.Solution, error) { return ris.SolveIMM(g, opts) }

// DegreeDiscount selects seeds by the classic degree-discount IC
// heuristic with propagation probability p.
func DegreeDiscount(g *Graph, k int, p float64) ([]NodeID, error) {
	return baselines.DegreeDiscount(g, k, p)
}
